#ifndef PAPYRUS_ACTIVITY_PERSISTENCE_H_
#define PAPYRUS_ACTIVITY_PERSISTENCE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "activity/design_thread.h"
#include "base/clock.h"
#include "cache/derivation_cache.h"
#include "oct/database.h"

namespace papyrus::activity {

/// The persistent form of the design history (§5.3: "the third is a
/// persistent version of the second data structure, for inter-process
/// communication and crash recovery").
///
/// Both the design database and design-thread control streams serialize
/// to a line/field-oriented text format (fields percent-encoded) and
/// restore bit-faithfully: node ids, version numbers, visibility flags,
/// timestamps, annotations and step-level history all survive the round
/// trip. Thread-state caches are not persisted (they are recomputed on
/// demand).
///
/// Format version 2 (the current writer) makes snapshots
/// corruption-tolerant: every record line carries a trailing ` !<hex>`
/// FNV-1a checksum of its body, and the file ends with a
/// `end <count> <hex>` trailer covering the whole record stream. Restore
/// recovers the longest valid prefix of a damaged snapshot — a truncated
/// tail or a checksummed line that no longer matches drops that line and
/// everything after it, reported through `RestoreStats`. Version-1
/// snapshots (no checksums) remain readable.

/// What restore had to do to a (possibly damaged) snapshot.
struct RestoreStats {
  int64_t records_restored = 0;  // record lines parsed and applied
  int64_t records_dropped = 0;   // record lines lost to damage
  /// True when the snapshot did not end with a valid trailer: the file
  /// was truncated or its tail corrupted, and only a prefix was restored.
  bool truncated = false;
};

/// Serializes every object version (including invisible and reclaimed
/// tombstones — version numbering must survive recovery).
std::string SerializeDatabase(const oct::OctDatabase& db);

/// Rebuilds a database from `text` into a fresh instance using `clock`.
/// Damaged version-2 snapshots restore their longest valid prefix;
/// `stats` (optional) reports what was kept and dropped.
Result<std::unique_ptr<oct::OctDatabase>> RestoreDatabase(
    const std::string& text, Clock* clock, RestoreStats* stats = nullptr);

/// Serializes one thread's control stream, cursor, check-ins, and
/// configuration.
std::string SerializeThread(const DesignThread& thread);

/// Rebuilds a design thread from `text`. Damaged version-2 snapshots
/// restore their longest valid prefix: links to dropped nodes are pruned
/// and the cursor falls back to the initial point when its node is gone.
Result<std::unique_ptr<DesignThread>> RestoreThread(
    const std::string& text, Clock* clock, RestoreStats* stats = nullptr);

/// Serializes the derivation cache's entries (v3 checksummed format, kind
/// "papyrus-cache"; v3 added per-entry `ckey` shared-store content keys).
/// Counters are runtime state and are not persisted.
std::string SerializeDerivationCache(const cache::DerivationCache& cache);

/// Re-populates `cache` from a snapshot. The database must be restored
/// first: entries are re-inserted through `DerivationCache::Restore`,
/// which re-validates and re-pins the recorded output versions — entries
/// whose versions did not survive are silently skipped (they would only
/// have missed anyway). Damaged v2 snapshots restore their longest valid
/// prefix.
Status RestoreDerivationCache(const std::string& text,
                              cache::DerivationCache* cache,
                              RestoreStats* stats = nullptr);

}  // namespace papyrus::activity

#endif  // PAPYRUS_ACTIVITY_PERSISTENCE_H_
