#ifndef PAPYRUS_ACTIVITY_PERSISTENCE_H_
#define PAPYRUS_ACTIVITY_PERSISTENCE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "activity/design_thread.h"
#include "base/clock.h"
#include "cache/derivation_cache.h"
#include "oct/database.h"

namespace papyrus::activity {

/// The persistent form of the design history (§5.3: "the third is a
/// persistent version of the second data structure, for inter-process
/// communication and crash recovery").
///
/// Both the design database and design-thread control streams serialize
/// to a line/field-oriented text format (fields percent-encoded) and
/// restore bit-faithfully: node ids, version numbers, visibility flags,
/// timestamps, annotations and step-level history all survive the round
/// trip. Thread-state caches are not persisted (they are recomputed on
/// demand).
///
/// Format version 2 (the current writer) makes snapshots
/// corruption-tolerant: every record line carries a trailing ` !<hex>`
/// FNV-1a checksum of its body, and the file ends with a
/// `end <count> <hex>` trailer covering the whole record stream. Restore
/// recovers the longest valid prefix of a damaged snapshot — a truncated
/// tail or a checksummed line that no longer matches drops that line and
/// everything after it, reported through `RestoreStats`. Version-1
/// snapshots (no checksums) remain readable.

/// What restore had to do to a (possibly damaged) snapshot.
struct RestoreStats {
  int64_t records_restored = 0;  // record lines parsed and applied
  int64_t records_dropped = 0;   // record lines lost to damage
  /// True when the snapshot did not end with a valid trailer: the file
  /// was truncated or its tail corrupted, and only a prefix was restored.
  bool truncated = false;
};

/// Serializes every object version (including invisible and reclaimed
/// tombstones — version numbering must survive recovery).
std::string SerializeDatabase(const oct::OctDatabase& db);

/// Rebuilds a database from `text` into a fresh instance using `clock`.
/// Damaged version-2 snapshots restore their longest valid prefix;
/// `stats` (optional) reports what was kept and dropped.
Result<std::unique_ptr<oct::OctDatabase>> RestoreDatabase(
    const std::string& text, Clock* clock, RestoreStats* stats = nullptr);

/// Serializes one thread's control stream, cursor, check-ins, and
/// configuration.
std::string SerializeThread(const DesignThread& thread);

/// Rebuilds a design thread from `text`. Damaged version-2 snapshots
/// restore their longest valid prefix: links to dropped nodes are pruned
/// and the cursor falls back to the initial point when its node is gone.
Result<std::unique_ptr<DesignThread>> RestoreThread(
    const std::string& text, Clock* clock, RestoreStats* stats = nullptr);

/// Serializes the derivation cache's entries (v3 checksummed format, kind
/// "papyrus-cache"; v3 added per-entry `ckey` shared-store content keys).
/// Counters are runtime state and are not persisted.
std::string SerializeDerivationCache(const cache::DerivationCache& cache);

/// Re-populates `cache` from a snapshot. The database must be restored
/// first: entries are re-inserted through `DerivationCache::Restore`,
/// which re-validates and re-pins the recorded output versions — entries
/// whose versions did not survive are silently skipped (they would only
/// have missed anyway). Damaged v2 snapshots restore their longest valid
/// prefix.
Status RestoreDerivationCache(const std::string& text,
                              cache::DerivationCache* cache,
                              RestoreStats* stats = nullptr);

// --- storage-engine record codecs ----------------------------------------
// The write-ahead log journals self-describing *state* records — the same
// byte formats the snapshot files use, one record at a time — so replay
// applies exact serialized states instead of re-executing logic. That is
// what keeps recovery byte-identical at any crash point.

/// One database record as its snapshot `object ...` body line (no
/// checksum, no trailing newline).
std::string EncodeObjectRecord(const oct::ObjectRecord& rec);

/// Parses a whitespace-split `object ...` body back into a record.
Result<oct::ObjectRecord> ParseObjectRecord(
    const std::vector<std::string>& fields);

/// Serializes one database shard as a standalone `papyrus-db 2` snapshot
/// (the delta-snapshot section format).
std::string SerializeDatabaseShard(const oct::OctDatabase& db, int shard);

/// Restores snapshot text into an existing database (shards restore one
/// by one into the same instance). Records arrive through
/// `OctDatabase::RestoreRecord`, so version order per name still holds.
Status RestoreDatabaseInto(const std::string& text, oct::OctDatabase* db,
                           RestoreStats* stats = nullptr);

/// One history node as its snapshot line block (`node`/`parents`/
/// `children`/`record`/`rin`/`rout`/`step`/`sin`/`sout` lines).
std::string EncodeNodeBlock(const HistoryNode& node);

/// Applies a journaled node block through `DesignThread::UpsertNode`.
Status ApplyNodeBlock(const std::string& block, DesignThread* thread);

/// One derivation-cache entry as its snapshot line block
/// (`entry`/`ein`/`eout`/`ckey` lines, index 0).
std::string EncodeCacheEntry(const cache::CacheEntry& entry);

/// Parses a journaled cache-entry block back into an entry.
Result<cache::CacheEntry> DecodeCacheEntry(const std::string& block);

}  // namespace papyrus::activity

#endif  // PAPYRUS_ACTIVITY_PERSISTENCE_H_
