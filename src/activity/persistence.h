#ifndef PAPYRUS_ACTIVITY_PERSISTENCE_H_
#define PAPYRUS_ACTIVITY_PERSISTENCE_H_

#include <memory>
#include <string>

#include "activity/design_thread.h"
#include "base/clock.h"
#include "oct/database.h"

namespace papyrus::activity {

/// The persistent form of the design history (§5.3: "the third is a
/// persistent version of the second data structure, for inter-process
/// communication and crash recovery").
///
/// Both the design database and design-thread control streams serialize
/// to a line/field-oriented text format (fields percent-encoded) and
/// restore bit-faithfully: node ids, version numbers, visibility flags,
/// timestamps, annotations and step-level history all survive the round
/// trip. Thread-state caches are not persisted (they are recomputed on
/// demand).

/// Serializes every object version (including invisible and reclaimed
/// tombstones — version numbering must survive recovery).
std::string SerializeDatabase(const oct::OctDatabase& db);

/// Rebuilds a database from `text` into a fresh instance using `clock`.
Result<std::unique_ptr<oct::OctDatabase>> RestoreDatabase(
    const std::string& text, Clock* clock);

/// Serializes one thread's control stream, cursor, check-ins, and
/// configuration.
std::string SerializeThread(const DesignThread& thread);

/// Rebuilds a design thread from `text`.
Result<std::unique_ptr<DesignThread>> RestoreThread(
    const std::string& text, Clock* clock);

}  // namespace papyrus::activity

#endif  // PAPYRUS_ACTIVITY_PERSISTENCE_H_
