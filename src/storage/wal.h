#ifndef PAPYRUS_STORAGE_WAL_H_
#define PAPYRUS_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace papyrus::storage {

// --- checksummed line framing --------------------------------------------
// The storage engine frames every durable line the way the v2 snapshot
// format does: `<body> !<16-hex FNV-1a of body>`. These helpers are shared
// by the WAL, the generation manifest, and the tests that chop them.

/// `body` + " !<hex>". `body` must not contain '\n'.
std::string ChecksumLine(std::string_view body);

/// Splits a framed line into its body, verifying the checksum.
Result<std::string> CheckChecksummedLine(std::string_view line);

// --- write-ahead log ------------------------------------------------------

/// One journaled mutation: an opaque single-line body under a
/// monotonically increasing sequence number. Bodies are written by the
/// session glue (src/core) and carry their own scope tag ("oct ...",
/// "thr ...", "cput ...", "state ...").
struct WalRecord {
  uint64_t seq = 0;
  std::string body;
};

/// What scanning a (possibly damaged) log recovered.
struct WalReplay {
  std::vector<WalRecord> records;  // longest valid prefix, seq ascending
  uint64_t base_seq = 0;           // header base: seqs <= base are gone
  uint64_t next_seq = 1;           // 1 + last valid seq
  uint64_t valid_bytes = 0;        // prefix length that survived
  int64_t dropped_bytes = 0;       // torn/corrupt tail bytes discarded
  bool truncated = false;          // tail damage was detected
};

/// The checksummed append-only write-ahead log.
///
/// Layout: one `papyrus-wal 1 <base_seq>` header line, then one
/// `w <seq> <body>` line per record, every line checksum-framed. Recovery
/// keeps the longest valid prefix: the first line whose checksum fails,
/// whose sequence regresses, or that is cut mid-line ends the replay, and
/// Open truncates the torn tail so new appends extend a valid log.
///
/// Journal-before-effect: callers append the records of a task's
/// mutations and Commit() before acknowledging the task anywhere outside
/// the session (queue completion, shared-store publication). Appends only
/// buffer; Commit writes the whole batch with a single fsync — the group
/// commit that replaces one whole-snapshot rewrite per task.
///
/// Thread contract: owned and driven by the session's engine thread; no
/// internal locking.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Scans `path` without opening it for writing. A missing file is an
  /// empty replay. Never modifies the file.
  static Result<WalReplay> Scan(const std::string& path);

  /// Opens `path` for appending: scans it, truncates any torn tail, and
  /// positions at the end. Creates the file (base 0) when missing.
  Result<WalReplay> Open(const std::string& path);

  bool is_open() const { return fd_ >= 0; }

  /// Buffers one record; returns its sequence number. Bodies must be
  /// single-line.
  uint64_t Append(std::string_view body);

  /// Writes everything buffered since the last Commit and fsyncs once.
  /// No-op (no write, no sync) when nothing is buffered. Returns the
  /// number of bytes made durable.
  Result<int64_t> Commit();

  /// Atomically replaces the log with a fresh header carrying
  /// `base_seq`: records with seq <= base_seq now live in a snapshot
  /// generation. Discards anything buffered. The log stays open.
  Status Reset(uint64_t base_seq);

  void Close();

  uint64_t next_seq() const { return next_seq_; }
  size_t buffered_records() const { return buffered_count_; }

  /// Lifetime totals (the glue layer mirrors them into papyrus.wal.*).
  struct Stats {
    int64_t records_appended = 0;
    int64_t commits = 0;
    int64_t syncs = 0;
    int64_t bytes_written = 0;
    int64_t resets = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  std::string path_;
  int fd_ = -1;
  uint64_t next_seq_ = 1;
  std::string buffer_;
  size_t buffered_count_ = 0;
  Stats stats_;
};

}  // namespace papyrus::storage

#endif  // PAPYRUS_STORAGE_WAL_H_
