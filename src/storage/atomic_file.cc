#include "storage/atomic_file.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace papyrus::storage {

namespace {

/// Fsyncs `path` (a file or a directory). Returns false on failure; the
/// caller decides whether that is fatal. On platforms without the POSIX
/// calls this is a no-op success.
bool FsyncPath(const std::filesystem::path& path, bool directory) {
#ifndef _WIN32
  int flags = O_RDONLY;
#ifdef O_DIRECTORY
  if (directory) flags |= O_DIRECTORY;
#else
  (void)directory;
#endif
  int fd = ::open(path.c_str(), flags);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  (void)directory;
  return true;
#endif
}

}  // namespace

namespace {

/// The temp-write + fsync + rename dance without the parent-directory
/// fsync, so single-file and batched writers share one implementation.
Status ReplaceFileDurably(const std::string& path,
                          const std::string& content) {
  std::filesystem::path final_path(path);
  std::filesystem::path tmp_path = final_path;
  // Process-unique temp name: concurrent writers of the same target
  // (daemon workers sharing a root) each rename their own temp file —
  // last rename wins — instead of one stealing the other's temp.
#ifndef _WIN32
  tmp_path += ".tmp." + std::to_string(::getpid());
#else
  tmp_path += ".tmp";
#endif
  {
    std::ofstream out(tmp_path, std::ios::trunc | std::ios::binary);
    if (!out) {
      return Status::Internal("cannot write " + tmp_path.string());
    }
    out << content;
    out.flush();
    if (!out) {
      std::error_code cleanup_ec;
      std::filesystem::remove(tmp_path, cleanup_ec);
      return Status::Internal("short write to " + tmp_path.string());
    }
  }
  // The stream is closed; push the bytes to stable storage before the
  // rename makes them the authoritative copy.
  if (!FsyncPath(tmp_path, /*directory=*/false)) {
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp_path, cleanup_ec);
    return Status::Internal("cannot fsync " + tmp_path.string());
  }
  std::error_code rename_ec;
  std::filesystem::rename(tmp_path, final_path, rename_ec);
  if (rename_ec) {
    std::error_code cleanup_ec;
    std::filesystem::remove(tmp_path, cleanup_ec);
    return Status::Internal("cannot replace " + path + ": " +
                            rename_ec.message());
  }
  return Status::OK();
}

}  // namespace

Status AtomicWriteFile(const std::string& path,
                       const std::string& content) {
  Status st = ReplaceFileDurably(path, content);
  if (!st.ok()) return st;
  // Make the rename durable. A missing parent fsync is not fatal for the
  // simulated workloads but is attempted for real-filesystem hygiene.
  std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) (void)FsyncPath(parent, /*directory=*/true);
  return Status::OK();
}

Status AtomicWriteFiles(const std::vector<PendingWrite>& files) {
  std::vector<std::filesystem::path> parents;
  for (const PendingWrite& file : files) {
    Status st = ReplaceFileDurably(file.path, file.content);
    if (!st.ok()) return st;
    std::filesystem::path parent =
        std::filesystem::path(file.path).parent_path();
    if (parent.empty()) continue;
    bool seen = false;
    for (const std::filesystem::path& p : parents) {
      if (p == parent) {
        seen = true;
        break;
      }
    }
    if (!seen) parents.push_back(std::move(parent));
  }
  // One directory sync per distinct parent, after every rename landed.
  for (const std::filesystem::path& parent : parents) {
    (void)FsyncPath(parent, /*directory=*/true);
  }
  return Status::OK();
}

}  // namespace papyrus::storage
