#include "storage/engine.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "base/macros.h"
#include "base/strings.h"
#include "storage/atomic_file.h"

namespace papyrus::storage {

namespace fs = std::filesystem;

namespace {

std::string FormatHex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

bool ParseHexU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot read " + path.string());
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Section names may contain '/'; their files flatten it to '_' and tag
/// the generation that wrote them.
std::string SectionFileName(const std::string& section, uint64_t gen) {
  std::string flat = section;
  for (char& c : flat) {
    if (c == '/') c = '_';
  }
  return flat + ".g" + std::to_string(gen);
}

std::string EncF(const std::string& v) { return "~" + PercentEncode(v); }

std::string DecF(const std::string& v) {
  std::string_view sv = v;
  if (!sv.empty() && sv.front() == '~') sv.remove_prefix(1);
  return PercentDecode(sv);
}

}  // namespace

Status SessionStore::Crash(CrashPoint point) {
  if (crash_hook_ && !crash_hook_(point)) {
    return Status::Aborted("simulated crash");
  }
  return Status::OK();
}

Status SessionStore::LoadManifest(const std::string& manifest_file,
                                  OpenResult* out) {
  PAPYRUS_ASSIGN_OR_RETURN(std::string text,
                           ReadFile(fs::path(dir_) / manifest_file));
  // Manifests are written atomically and referenced only after an fsync,
  // so unlike the WAL they are parsed strictly: any damage is fatal.
  std::vector<std::string> lines = Split(text, '\n');
  size_t section_lines = 0;
  bool saw_header = false;
  bool saw_end = false;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    PAPYRUS_ASSIGN_OR_RETURN(std::string body, CheckChecksummedLine(line));
    std::vector<std::string> f = SplitWhitespace(body);
    if (f.empty()) continue;
    if (!saw_header) {
      if (f.size() != 2 || f[0] != "papyrus-manifest" || f[1] != "1") {
        return Status::InvalidArgument("bad manifest header: " + body);
      }
      saw_header = true;
      continue;
    }
    if (f[0] == "gen" && f.size() == 2) {
      if (!ParseU64(f[1], &generation_)) {
        return Status::InvalidArgument("bad manifest gen: " + body);
      }
    } else if (f[0] == "walbase" && f.size() == 2) {
      if (!ParseU64(f[1], &wal_base_)) {
        return Status::InvalidArgument("bad manifest walbase: " + body);
      }
    } else if (f[0] == "section" && f.size() == 4) {
      SectionFile sf;
      sf.file = DecF(f[2]);
      if (!ParseHexU64(f[3], &sf.checksum)) {
        return Status::InvalidArgument("bad section checksum: " + body);
      }
      current_[DecF(f[1])] = sf;
      ++section_lines;
    } else if (f[0] == "end" && f.size() == 2) {
      uint64_t count = 0;
      if (!ParseU64(f[1], &count) || count != section_lines) {
        return Status::InvalidArgument("manifest section count mismatch");
      }
      saw_end = true;
    } else {
      return Status::InvalidArgument("bad manifest line: " + body);
    }
  }
  if (!saw_header || !saw_end) {
    return Status::InvalidArgument("incomplete manifest " + manifest_file);
  }
  for (const auto& [name, sf] : current_) {
    PAPYRUS_ASSIGN_OR_RETURN(std::string section_text,
                             ReadFile(fs::path(dir_) / sf.file));
    if (Fnv1a(section_text) != sf.checksum) {
      return Status::InvalidArgument("section " + name +
                                     " fails its manifest checksum");
    }
    out->sections[name] = std::move(section_text);
  }
  out->generation = generation_;
  return Status::OK();
}

Result<SessionStore::OpenResult> SessionStore::Open(
    const std::string& dir) {
  dir_ = dir;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  OpenResult out;

  std::string current;
  if (auto text = ReadFile(fs::path(dir_) / "CURRENT"); text.ok()) {
    current = std::string(Trim(*text));
  }
  if (StartsWith(current, "manifest.")) {
    out.layout = Layout::kEngine;
    PAPYRUS_RETURN_IF_ERROR(LoadManifest(current, &out));
  } else if (StartsWith(current, "snap.")) {
    out.layout = Layout::kLegacySnapDir;
    out.legacy_dir = (fs::path(dir_) / current).string();
    uint64_t n = 0;
    (void)ParseU64(current.substr(5), &n);
    out.legacy_generation = n;
    generation_ = n;  // engine numbering continues after the legacy one
  } else if (fs::exists(fs::path(dir_) / "database.pdb")) {
    out.layout = Layout::kLegacyFlat;
    out.legacy_dir = dir_;
  } else {
    out.layout = Layout::kEmpty;
  }

  PAPYRUS_ASSIGN_OR_RETURN(WalReplay replay,
                           wal_.Open((fs::path(dir_) / "wal.log").string()));
  out.wal_truncated = replay.truncated;
  out.wal_dropped_bytes = replay.dropped_bytes;
  for (WalRecord& rec : replay.records) {
    // Records at or below the manifest's base were compacted into the
    // current generation before the crash that left them behind.
    if (rec.seq > wal_base_) out.wal.push_back(std::move(rec));
  }
  return out;
}

Result<int64_t> SessionStore::CommitWal() {
  if (!wal_.is_open()) {
    return Status::FailedPrecondition("session store not open");
  }
  PAPYRUS_ASSIGN_OR_RETURN(int64_t bytes, wal_.Commit());
  PAPYRUS_RETURN_IF_ERROR(Crash(CrashPoint::kAfterWalCommit));
  return bytes;
}

Status SessionStore::SaveGeneration(
    const std::map<std::string, std::string>& dirty,
    const std::vector<std::string>& live) {
  if (!wal_.is_open()) {
    return Status::FailedPrecondition("session store not open");
  }
  uint64_t gen = generation_ + 1;

  // 1. Write the dirtied section files (batched fsync, one dirsync).
  std::map<std::string, SectionFile> next;
  std::vector<PendingWrite> writes;
  int64_t written = 0, reused = 0;
  for (const std::string& name : live) {
    auto d = dirty.find(name);
    if (d != dirty.end()) {
      SectionFile sf;
      sf.file = SectionFileName(name, gen);
      sf.checksum = Fnv1a(d->second);
      writes.push_back({(fs::path(dir_) / sf.file).string(), d->second});
      save_stats_.bytes_written += static_cast<int64_t>(d->second.size());
      next[name] = std::move(sf);
      ++written;
      continue;
    }
    auto cur = current_.find(name);
    if (cur == current_.end()) {
      return Status::FailedPrecondition(
          "section " + name + " is live but neither dirty nor current");
    }
    next[name] = cur->second;  // carried over, file untouched
    ++reused;
  }
  PAPYRUS_RETURN_IF_ERROR(AtomicWriteFiles(writes));
  PAPYRUS_RETURN_IF_ERROR(Crash(CrashPoint::kAfterShardWrite));

  // 2. Write and swap the manifest. Everything journaled so far is
  // reflected in the section texts, so the new WAL base is the last
  // allocated sequence number.
  uint64_t base = wal_.next_seq() - 1;
  std::ostringstream m;
  m << ChecksumLine("papyrus-manifest 1") << '\n';
  m << ChecksumLine("gen " + std::to_string(gen)) << '\n';
  m << ChecksumLine("walbase " + std::to_string(base)) << '\n';
  for (const auto& [name, sf] : next) {
    m << ChecksumLine("section " + EncF(name) + ' ' + EncF(sf.file) +
                      ' ' + FormatHex(sf.checksum))
      << '\n';
  }
  m << ChecksumLine("end " + std::to_string(next.size())) << '\n';
  std::string manifest_file = "manifest." + std::to_string(gen);
  PAPYRUS_RETURN_IF_ERROR(AtomicWriteFile(
      (fs::path(dir_) / manifest_file).string(), m.str()));
  PAPYRUS_RETURN_IF_ERROR(Crash(CrashPoint::kBeforeManifestSwap));
  PAPYRUS_RETURN_IF_ERROR(AtomicWriteFile(
      (fs::path(dir_) / "CURRENT").string(), manifest_file + "\n"));
  PAPYRUS_RETURN_IF_ERROR(Crash(CrashPoint::kAfterManifestSwap));

  // 3. The generation owns its records now; shrink the log.
  PAPYRUS_RETURN_IF_ERROR(wal_.Reset(base));
  PAPYRUS_RETURN_IF_ERROR(Crash(CrashPoint::kAfterWalReset));

  generation_ = gen;
  wal_base_ = base;
  current_ = std::move(next);
  ++save_stats_.generations;
  save_stats_.sections_written += written;
  save_stats_.sections_reused += reused;
  PruneUnreferenced();
  return Status::OK();
}

void SessionStore::PruneUnreferenced() {
  std::set<std::string> keep = {"CURRENT", "wal.log",
                                "manifest." + std::to_string(generation_)};
  for (const auto& [name, sf] : current_) keep.insert(sf.file);
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(dir_, ec)) {
    std::string base = entry.path().filename().string();
    if (keep.count(base) != 0) continue;
    bool is_generation_file =
        base.rfind(".g") != std::string::npos ||
        StartsWith(base, "manifest.");
    // Migrated legacy snapshot dirs and orphaned temp files are garbage
    // once a manifest exists.
    bool is_legacy_snap = StartsWith(base, "snap.") ||
                          base.find(".tmp.") != std::string::npos;
    if (!is_generation_file && !is_legacy_snap) continue;
    std::error_code rm_ec;
    uintmax_t removed = fs::remove_all(entry.path(), rm_ec);
    if (!rm_ec) save_stats_.files_pruned += static_cast<int64_t>(removed);
  }
}

std::map<std::string, std::string> SessionStore::CurrentSectionFiles()
    const {
  std::map<std::string, std::string> out;
  for (const auto& [name, sf] : current_) out[name] = sf.file;
  return out;
}

Result<std::string> SessionStore::ReadSection(
    const std::string& name) const {
  auto it = current_.find(name);
  if (it == current_.end()) {
    return Status::NotFound("no section " + name);
  }
  PAPYRUS_ASSIGN_OR_RETURN(std::string text,
                           ReadFile(fs::path(dir_) / it->second.file));
  if (Fnv1a(text) != it->second.checksum) {
    return Status::InvalidArgument("section " + name +
                                   " fails its manifest checksum");
  }
  return text;
}

}  // namespace papyrus::storage
