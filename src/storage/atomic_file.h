#ifndef PAPYRUS_STORAGE_ATOMIC_FILE_H_
#define PAPYRUS_STORAGE_ATOMIC_FILE_H_

#include <string>
#include <vector>

#include "base/status.h"

namespace papyrus::storage {

/// Durably replaces the file at `path` with `content`:
///
///   1. writes `content` to `<path>.tmp` and flushes it,
///   2. fsyncs the temp file so the bytes (not just the metadata) are on
///      stable storage before the swap,
///   3. atomically renames the temp file over `path`,
///   4. fsyncs the containing directory so the rename itself survives a
///      host crash.
///
/// A crash at any point leaves either the previous file or the complete
/// new one — never a torn or half-written snapshot. Every durable save
/// path in the tree (session snapshots, `cache.pdc`, the daemon's queue
/// checkpoints and `CURRENT` pointers) funnels through this helper so the
/// temp-file dance is written exactly once.
///
/// On failure the temp file is removed (best effort) and the previous
/// `path` contents are untouched.
Status AtomicWriteFile(const std::string& path, const std::string& content);

/// One file of a batched atomic write.
struct PendingWrite {
  std::string path;
  std::string content;
};

/// Batched variant for writers that produce many files in one durable
/// step (the delta-snapshot shard writer): every file gets the same
/// temp-write + fsync + rename dance as AtomicWriteFile, but the
/// containing-directory fsync happens once per distinct parent directory
/// after all renames instead of once per file. For a generation of N
/// shards in one directory that is N+1 fsyncs instead of 2N.
///
/// Not transactional across files: a crash mid-batch can leave some
/// targets replaced and others not. Callers sequence a manifest swap
/// after the batch so partially written generations are never referenced.
Status AtomicWriteFiles(const std::vector<PendingWrite>& files);

}  // namespace papyrus::storage

#endif  // PAPYRUS_STORAGE_ATOMIC_FILE_H_
