#ifndef PAPYRUS_STORAGE_CAS_H_
#define PAPYRUS_STORAGE_CAS_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/result.h"
#include "base/status.h"
#include "obs/observability.h"

namespace papyrus::storage {

/// One output an entry carries: the blob is stored once under its SHA-256
/// and shared by every entry that produced identical bytes.
struct CasOutput {
  std::string name_hint;  // output object base name ("cell.layout")
  bool visible = true;    // false: rematerialized intermediate
  std::string blob_hash;  // lowercase-hex SHA-256 of the blob bytes
  int64_t size_bytes = 0;
};

/// Provenance metadata kept with an entry so a fetch can rebuild a full
/// session-cache entry (and the shell can display where a hit came from).
struct CasEntryMeta {
  std::string tool;
  std::string tool_version;
  std::string canonical_options;
  uint64_t seed_salt = 0;
  int64_t cost_micros = 0;  // virtual cost the hit elides
};

/// An output handed back by Fetch: metadata plus the verified blob bytes.
struct CasFetchedOutput {
  std::string name_hint;
  bool visible = true;
  std::string blob_hash;
  std::string bytes;
};

struct CasFetchResult {
  CasEntryMeta meta;
  std::vector<CasFetchedOutput> outputs;
};

/// What Publish stores for one output.
struct CasPublishOutput {
  std::string name_hint;
  bool visible = true;
  std::string bytes;  // canonical payload text (oct::EncodePayloadText)
};

/// Point-in-time statistics snapshot (mirrored into papyrus.cas.*).
struct CasStats {
  int64_t hits = 0;            // fetches that returned verified outputs
  int64_t misses = 0;          // fetches with no entry for the key
  int64_t published = 0;       // new entries accepted by Publish
  int64_t dedup_bytes = 0;     // blob bytes NOT written because the blob
                               // already existed (cross-entry sharing)
  int64_t bytes_written = 0;   // blob bytes physically written
  int64_t evicted_entries = 0;
  int64_t evicted_bytes = 0;   // blob bytes freed by eviction
  int64_t verify_failures = 0; // blobs whose bytes no longer matched
                               // their hash at fetch time
  int64_t orphans_collected = 0;  // crash-orphaned blob files GC'd at Open
  int64_t neg_hits = 0;        // lookups short-circuited by the
                               // negative-entry cache (known-absent keys)
  int64_t neg_entries = 0;     // keys currently negative-cached
  // Current store shape:
  int64_t entries = 0;
  int64_t blobs = 0;
  int64_t live_blobs = 0;       // blobs referenced by >= 2 entries
  int64_t evictable_blobs = 0;  // blobs referenced by exactly 1 entry
  int64_t total_bytes = 0;      // summed unique blob bytes on disk
};

struct CasOptions {
  /// Evict least-recently-used entries once unique blob bytes exceed this
  /// budget (0 = unlimited). Blobs are deleted only when no surviving
  /// entry references them.
  int64_t size_budget_bytes = 0;
  /// Compact the journal into the checkpoint after this many appends.
  int64_t checkpoint_interval = 256;
};

/// Concurrency-safe, ref-counted, content-addressed store for derivation
/// outputs, shared across sessions, users, and daemon restarts.
///
/// On-disk layout under `root`:
///   cas.state            atomic checkpoint (write-rename-fsync)
///   cas.journal          checksummed append-only journal over the
///                        checkpoint (put/del/touch records)
///   blobs/<hh>/<sha256>  one file per unique output payload
///
/// Durability protocol: blob files land first (each written atomically),
/// then the journal line that makes the entry exist is appended. A crash
/// between the two leaves orphan blobs, which Open() garbage-collects
/// after recovering the index from checkpoint + longest-valid journal
/// prefix. Blob ref-counts are derived state — an entry's `put` / `del`
/// journal records ARE the journaled ref-count updates — so the store can
/// never recover an inconsistent count.
///
/// Thread contract: all public methods lock the internal mutex; Fetch
/// copies blob bytes out under the lock, so concurrent eviction can never
/// yank bytes from under a reader.
class ContentStore {
 public:
  static Result<std::unique_ptr<ContentStore>> Open(
      const std::string& root, const CasOptions& options = {});

  ~ContentStore();
  ContentStore(const ContentStore&) = delete;
  ContentStore& operator=(const ContentStore&) = delete;

  /// Stores `outputs` under `key` (idempotent: an existing entry is left
  /// untouched and counts as deduplication). Blobs whose bytes already
  /// exist in the store are shared, not rewritten. May evict other
  /// entries to honor the size budget — never the one just published.
  Status Publish(const std::string& key, const CasEntryMeta& meta,
                 const std::vector<CasPublishOutput>& outputs)
      PAPYRUS_EXCLUDES(mu_);

  /// Looks up `key`, re-reads every blob, and verifies its SHA-256 before
  /// returning the bytes. NotFound on a miss. On verification failure the
  /// damaged entry is dropped from the store (so the caller re-runs the
  /// tool and republishes clean bytes) and Aborted is returned — corrupt
  /// bytes are never handed out. A hit refreshes the entry's LRU position
  /// durably (journaled `touch`).
  ///
  /// Misses feed a bounded negative-entry cache: a key known to be absent
  /// short-circuits subsequent probes (sessions re-probe the same absent
  /// derivation key on every task retry) without touching the index.
  /// Publish invalidates the key, so a negative entry can never mask a
  /// later publication.
  Result<CasFetchResult> Fetch(const std::string& key) PAPYRUS_EXCLUDES(mu_);

  /// True iff an entry exists (no verification, no LRU refresh). Consults
  /// and feeds the negative-entry cache like Fetch.
  bool Contains(const std::string& key) PAPYRUS_EXCLUDES(mu_);

  /// Compacts the journal into the checkpoint immediately.
  Status Checkpoint() PAPYRUS_EXCLUDES(mu_);

  CasStats stats() PAPYRUS_EXCLUDES(mu_);

  /// Attaches trace + metrics sinks (papyrus.cas.* counters/gauges).
  void set_observability(const obs::Observability& obs) PAPYRUS_EXCLUDES(mu_);

  const std::string& root() const { return root_; }

 private:
  struct Entry {
    CasEntryMeta meta;
    std::vector<CasOutput> outputs;
    int64_t lru_seq = 0;  // monotonic use sequence (not wall clock)
  };
  struct Blob {
    int64_t size_bytes = 0;
    int64_t refs = 0;
  };

  ContentStore(std::string root, const CasOptions& options);

  Status LoadCheckpoint() PAPYRUS_REQUIRES(mu_);
  Status ReplayJournal() PAPYRUS_REQUIRES(mu_);
  Status ApplyJournalLine(const std::vector<std::string>& f)
      PAPYRUS_REQUIRES(mu_);
  Status CollectOrphans() PAPYRUS_REQUIRES(mu_);
  Status AppendJournal(const std::string& body) PAPYRUS_REQUIRES(mu_);
  Status WriteCheckpoint() PAPYRUS_REQUIRES(mu_);
  Status MaybeCheckpoint() PAPYRUS_REQUIRES(mu_);

  /// Inserts `entry` under `key` into the in-memory index, bumping blob
  /// refs. The caller has already durably journaled it.
  void IndexEntry(const std::string& key, Entry entry) PAPYRUS_REQUIRES(mu_);
  /// Removes an entry, dropping blob refs and deleting unreferenced blob
  /// files. Returns the blob bytes freed.
  int64_t DropEntry(const std::string& key, bool journal)
      PAPYRUS_REQUIRES(mu_);
  /// Evicts LRU entries until `total_bytes_` fits the budget; `keep` is
  /// never evicted.
  void EnforceBudget(const std::string& keep) PAPYRUS_REQUIRES(mu_);

  /// Negative-entry cache plumbing: returns true (and counts a neg hit)
  /// when `key` is known absent; otherwise false.
  bool NegativeHit(const std::string& key) PAPYRUS_REQUIRES(mu_);
  /// Records `key` as known-absent, evicting the oldest negative entry
  /// once the cache is full.
  void RememberAbsent(const std::string& key) PAPYRUS_REQUIRES(mu_);

  std::string BlobPath(const std::string& hash) const;
  static std::string PutRecord(const std::string& key, const Entry& entry);

  void RefreshGauges() PAPYRUS_REQUIRES(mu_);

  const std::string root_;
  const CasOptions options_;

  base::Mutex mu_;
  std::map<std::string, Entry> entries_ PAPYRUS_GUARDED_BY(mu_);
  std::map<std::string, Blob> blobs_ PAPYRUS_GUARDED_BY(mu_);
  /// Keys proven absent since the last Publish that named them. FIFO
  /// bounded; the deque may carry stale keys Publish already invalidated
  /// (membership lives in the set, eviction skips strays).
  std::set<std::string> negative_ PAPYRUS_GUARDED_BY(mu_);
  std::deque<std::string> negative_fifo_ PAPYRUS_GUARDED_BY(mu_);
  int64_t total_bytes_ PAPYRUS_GUARDED_BY(mu_) = 0;
  int64_t next_lru_seq_ PAPYRUS_GUARDED_BY(mu_) = 1;
  int64_t journal_appends_ PAPYRUS_GUARDED_BY(mu_) = 0;
  std::ofstream journal_ PAPYRUS_GUARDED_BY(mu_);
  CasStats stats_ PAPYRUS_GUARDED_BY(mu_);

  obs::Observability obs_ PAPYRUS_GUARDED_BY(mu_);
  obs::Counter* c_hits_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_misses_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_published_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_dedup_bytes_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_bytes_written_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_evicted_entries_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_evicted_bytes_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_verify_failures_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_orphans_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_neg_hits_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Gauge* g_entries_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Gauge* g_blobs_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Gauge* g_bytes_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
};

}  // namespace papyrus::storage

#endif  // PAPYRUS_STORAGE_CAS_H_
