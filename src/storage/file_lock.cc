#include "storage/file_lock.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace papyrus::storage {

Result<std::unique_ptr<FileLock>> FileLock::AcquireImpl(
    const std::string& path, bool blocking) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open lock file " + path + ": " +
                            std::strerror(errno));
  }
  int flags = LOCK_EX | (blocking ? 0 : LOCK_NB);
  while (::flock(fd, flags) != 0) {
    if (errno == EINTR) continue;
    int err = errno;
    ::close(fd);
    if (!blocking && (err == EWOULDBLOCK || err == EAGAIN)) {
      return Status::Unavailable("lock " + path + " is held elsewhere");
    }
    return Status::Internal("cannot lock " + path + ": " +
                            std::strerror(err));
  }
  return std::unique_ptr<FileLock>(new FileLock(path, fd));
}

Result<std::unique_ptr<FileLock>> FileLock::Acquire(
    const std::string& path) {
  return AcquireImpl(path, /*blocking=*/true);
}

Result<std::unique_ptr<FileLock>> FileLock::TryAcquire(
    const std::string& path) {
  return AcquireImpl(path, /*blocking=*/false);
}

FileLock::~FileLock() {
  if (fd_ >= 0) {
    // flock drops with the last close of this description; explicit
    // unlock keeps the window tight.
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
}

}  // namespace papyrus::storage
