#include "storage/wal.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "base/macros.h"
#include "base/strings.h"
#include "storage/atomic_file.h"

namespace papyrus::storage {

namespace {

std::string FormatHex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

bool ParseHex(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

std::string HeaderLine(uint64_t base_seq) {
  return ChecksumLine("papyrus-wal 1 " + std::to_string(base_seq)) + "\n";
}

}  // namespace

std::string ChecksumLine(std::string_view body) {
  std::string out(body);
  out += " !";
  out += FormatHex(Fnv1a(body));
  return out;
}

Result<std::string> CheckChecksummedLine(std::string_view line) {
  size_t sp = line.rfind(' ');
  if (sp == std::string_view::npos || sp + 2 >= line.size() ||
      line[sp + 1] != '!') {
    return Status::InvalidArgument("line missing checksum");
  }
  uint64_t want = 0;
  if (!ParseHex(std::string(line.substr(sp + 2)), &want)) {
    return Status::InvalidArgument("bad checksum field");
  }
  std::string body(line.substr(0, sp));
  if (Fnv1a(body) != want) {
    return Status::InvalidArgument("checksum mismatch");
  }
  return body;
}

WriteAheadLog::~WriteAheadLog() { Close(); }

Result<WalReplay> WriteAheadLog::Scan(const std::string& path) {
  WalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in) return replay;  // missing log = empty log
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  size_t pos = 0;
  bool saw_header = false;
  uint64_t last_seq = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // A line cut mid-write: the classic torn tail.
      replay.truncated = true;
      break;
    }
    std::string_view line(text.data() + pos, nl - pos);
    auto body = CheckChecksummedLine(line);
    if (!body.ok()) {
      replay.truncated = true;
      break;
    }
    std::vector<std::string> f = SplitWhitespace(*body);
    if (!saw_header) {
      uint64_t base = 0;
      if (f.size() != 3 || f[0] != "papyrus-wal" || f[1] != "1" ||
          !ParseU64(f[2], &base)) {
        return Status::InvalidArgument("not a papyrus-wal file: " + path);
      }
      replay.base_seq = base;
      last_seq = base;
      saw_header = true;
      pos = nl + 1;
      replay.valid_bytes = pos;
      continue;
    }
    uint64_t seq = 0;
    if (f.size() < 2 || f[0] != "w" || !ParseU64(f[1], &seq) ||
        seq <= last_seq) {
      replay.truncated = true;
      break;
    }
    // The body is everything after "w <seq> ".
    size_t body_at = body->find(' ', body->find(' ') + 1);
    WalRecord rec;
    rec.seq = seq;
    if (body_at != std::string::npos) rec.body = body->substr(body_at + 1);
    replay.records.push_back(std::move(rec));
    last_seq = seq;
    pos = nl + 1;
    replay.valid_bytes = pos;
  }
  if (!saw_header && !text.empty()) {
    return Status::InvalidArgument("not a papyrus-wal file: " + path);
  }
  replay.dropped_bytes =
      static_cast<int64_t>(text.size() - replay.valid_bytes);
  replay.next_seq = last_seq + 1;
  return replay;
}

Result<WalReplay> WriteAheadLog::Open(const std::string& path) {
  Close();
  path_ = path;
  bool existed = std::filesystem::exists(path);
  WalReplay replay;
  if (existed) {
    PAPYRUS_ASSIGN_OR_RETURN(replay, Scan(path));
  } else {
    PAPYRUS_RETURN_IF_ERROR(AtomicWriteFile(path, HeaderLine(0)));
    replay.valid_bytes = HeaderLine(0).size();
  }
#ifndef _WIN32
  fd_ = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd_ < 0) return Status::Internal("cannot open wal: " + path);
  if (replay.truncated) {
    if (::ftruncate(fd_, static_cast<off_t>(replay.valid_bytes)) != 0) {
      Close();
      return Status::Internal("cannot truncate torn wal tail: " + path);
    }
    if (::fsync(fd_) != 0) {
      Close();
      return Status::Internal("cannot fsync wal: " + path);
    }
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    Close();
    return Status::Internal("cannot seek wal: " + path);
  }
#else
  return Status::Internal("wal unsupported on this platform");
#endif
  next_seq_ = replay.next_seq;
  buffer_.clear();
  buffered_count_ = 0;
  return replay;
}

uint64_t WriteAheadLog::Append(std::string_view body) {
  uint64_t seq = next_seq_++;
  std::string line = "w " + std::to_string(seq) + " ";
  line.append(body.data(), body.size());
  buffer_ += ChecksumLine(line);
  buffer_ += '\n';
  ++buffered_count_;
  ++stats_.records_appended;
  return seq;
}

Result<int64_t> WriteAheadLog::Commit() {
  if (buffered_count_ == 0) return static_cast<int64_t>(0);
  if (fd_ < 0) return Status::FailedPrecondition("wal not open");
#ifndef _WIN32
  size_t off = 0;
  while (off < buffer_.size()) {
    ssize_t n = ::write(fd_, buffer_.data() + off, buffer_.size() - off);
    if (n < 0) return Status::Internal("wal write failed: " + path_);
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    return Status::Internal("wal fsync failed: " + path_);
  }
#endif
  int64_t bytes = static_cast<int64_t>(buffer_.size());
  stats_.bytes_written += bytes;
  ++stats_.commits;
  ++stats_.syncs;
  buffer_.clear();
  buffered_count_ = 0;
  return bytes;
}

Status WriteAheadLog::Reset(uint64_t base_seq) {
  if (fd_ < 0) return Status::FailedPrecondition("wal not open");
#ifndef _WIN32
  ::close(fd_);
  fd_ = -1;
  PAPYRUS_RETURN_IF_ERROR(AtomicWriteFile(path_, HeaderLine(base_seq)));
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd_ < 0) return Status::Internal("cannot reopen wal: " + path_);
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    return Status::Internal("cannot seek wal: " + path_);
  }
#endif
  buffer_.clear();
  buffered_count_ = 0;
  next_seq_ = base_seq + 1;
  ++stats_.resets;
  return Status::OK();
}

void WriteAheadLog::Close() {
#ifndef _WIN32
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

}  // namespace papyrus::storage
