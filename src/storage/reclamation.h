#ifndef PAPYRUS_STORAGE_RECLAMATION_H_
#define PAPYRUS_STORAGE_RECLAMATION_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "activity/design_thread.h"
#include "base/clock.h"
#include "base/thread_annotations.h"
#include "oct/database.h"

namespace papyrus::cache {
class DerivationCache;
}  // namespace papyrus::cache

namespace papyrus::storage {

/// Outcome counters of one reclamation pass.
struct ReclamationReport {
  int records_affected = 0;
  int objects_reclaimed = 0;
  int64_t bytes_reclaimed = 0;
};

/// The user-approval hook: Papyrus "actively reminds users that some part
/// of the design history will be pruned away; only when users approve"
/// does it reclaim (§5.4). Return false to veto. The default approves.
using ApprovalFn =
    std::function<bool(const std::string& description,
                       const std::vector<activity::NodeId>& nodes)>;

/// The object-reclamation subsystem (§5.4): counters the storage overhead
/// of single-assignment update by analyzing the design history and
/// reclaiming object versions least likely to be needed. Runs as a
/// process independent of the activity manager in the thesis; here it is
/// a component invoked over design threads.
///
/// Three mechanisms:
///  - *Filtering*: task invocations on the filter list are never worth
///    recording ("facility" tasks like printing) — the activity manager
///    consults `ShouldRecord` before appending.
///  - *Aging*: vertical aging strips the step-level details (and reclaims
///    the intermediate versions) of records older than a threshold;
///    horizontal aging prunes history prefixes that are too far back in
///    time entirely.
///  - *Garbage collection*: abstracts user-identified iterative
///    refinement sequences down to the rounds whose outputs are actually
///    used, and prunes dead-end branches that have not been visited for a
///    threshold period.
class ReclamationManager {
 public:
  ReclamationManager(oct::OctDatabase* db, Clock* clock)
      : db_(db), clock_(clock) {}

  ReclamationManager(const ReclamationManager&) = delete;
  ReclamationManager& operator=(const ReclamationManager&) = delete;

  void set_approval(ApprovalFn fn) { approval_ = std::move(fn); }

  /// Attaches the derivation cache (may be null). Reclamation notifies it
  /// before physically freeing a version, so memoized derivations over
  /// that version are dropped (and their pins released) first.
  void set_derivation_cache(cache::DerivationCache* cache) {
    cache_ = cache;
  }

  // --- filtering ----------------------------------------------------------

  void AddFilteredTask(const std::string& task_name) {
    filtered_.insert(task_name);
  }
  /// False when the task's history records should be discarded instead of
  /// entering the control stream.
  bool ShouldRecord(const std::string& task_name) const {
    return filtered_.count(task_name) == 0;
  }

  // --- aging ---------------------------------------------------------------

  /// Vertical aging (Figure 5.7): strips step details from records
  /// appended before `older_than_micros` and physically reclaims their
  /// intermediate object versions.
  Result<ReclamationReport> VerticalAge(activity::DesignThread* thread,
                                        int64_t older_than_micros)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Horizontal aging (Figure 5.8): prunes the linear prefix of records
  /// appended before `older_than_micros`, re-rooting the stream at the
  /// first younger record, and reclaims versions referenced only by the
  /// pruned prefix. Stops at branching structure.
  Result<ReclamationReport> HorizontalAge(activity::DesignThread* thread,
                                          int64_t older_than_micros)
      PAPYRUS_REQUIRES(base::engine_thread);

  // --- garbage collection ----------------------------------------------------

  /// Iterative-process abstraction (Figure 5.9). `rounds` is the explicit
  /// user hint identifying the records of each iteration round, in order.
  /// Rounds whose outputs are consumed by records outside the iteration
  /// are kept; the rest are spliced out of the stream and their objects
  /// reclaimed.
  Result<ReclamationReport> AbstractIterations(
      activity::DesignThread* thread,
      const std::vector<std::vector<activity::NodeId>>& rounds)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Dead-end branch pruning: erases frontier branches whose tip has not
  /// been accessed for `unaccessed_micros`.
  Result<ReclamationReport> PruneDeadBranches(
      activity::DesignThread* thread, int64_t unaccessed_micros)
      PAPYRUS_REQUIRES(base::engine_thread);

  int64_t total_bytes_reclaimed() const { return total_bytes_reclaimed_; }

 private:
  bool Approve(const std::string& description,
               const std::vector<activity::NodeId>& nodes) const {
    return !approval_ || approval_(description, nodes);
  }
  /// Physically reclaims the given versions and accumulates the report.
  void ReclaimObjects(const std::vector<oct::ObjectId>& ids,
                      ReclamationReport* report)
      PAPYRUS_REQUIRES(base::engine_thread);

  oct::OctDatabase* db_;
  Clock* clock_;
  std::set<std::string> filtered_;
  ApprovalFn approval_;
  cache::DerivationCache* cache_ = nullptr;  // optional, not owned
  int64_t total_bytes_reclaimed_ = 0;
};

}  // namespace papyrus::storage

#endif  // PAPYRUS_STORAGE_RECLAMATION_H_
