#ifndef PAPYRUS_STORAGE_ENGINE_H_
#define PAPYRUS_STORAGE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "storage/wal.h"

namespace papyrus::storage {

/// The session storage engine: a write-ahead log plus periodic compacted
/// delta snapshots behind a manifest swap.
///
/// On-disk layout of a session directory:
///
///   CURRENT            -> "manifest.<gen>" (atomic swap point)
///   manifest.<gen>     checksummed list: generation, WAL base sequence,
///                      and one `section <name> <file> <fnv>` line per
///                      live section
///   <section>.g<N>     immutable section files; a manifest may reference
///                      files written by *older* generations (sections
///                      that were clean are carried over, not rewritten)
///   wal.log            the write-ahead log of mutations since the
///                      manifest's WAL base
///
/// The engine deals only in named *sections* (opaque texts — the sharded
/// OCT database, per-thread control streams, the derivation cache, the
/// daemon session state) and opaque WAL record bodies; serialization and
/// replay semantics live with the session glue (src/core, src/server).
///
/// Recovery = CURRENT -> manifest -> section files + WAL tail replay
/// (records with seq > the manifest's WAL base, longest valid prefix).
/// A save writes only the sections dirtied since the last generation,
/// batched-fsyncs them, atomically swaps CURRENT, then resets the WAL.
/// A crash at any point recovers to a consistent state: until the
/// CURRENT swap lands, the previous manifest + WAL tail is authoritative
/// and half-written generation files are unreferenced garbage.
///
/// Thread contract: owned and driven by the session's engine thread.
class SessionStore {
 public:
  /// What kind of on-disk state Open found.
  enum class Layout {
    kEmpty,          // nothing restorable: fresh session
    kEngine,         // CURRENT -> manifest (this engine's layout)
    kLegacySnapDir,  // PR 6 daemon layout: CURRENT -> snap.<N>/ of
                     // whole-file snapshots (migrated on the next save)
    kLegacyFlat,     // PR 1 flat layout: database.pdb + thread_*.pth
  };

  /// Simulated-crash points for the recovery matrix. The hook returns
  /// false to "crash" there: the engine stops immediately with Aborted
  /// and performs no further writes, leaving the directory exactly as a
  /// process kill at that instant would.
  enum class CrashPoint {
    kAfterWalCommit,
    kAfterShardWrite,
    kBeforeManifestSwap,
    kAfterManifestSwap,
    kAfterWalReset,
  };
  using CrashHook = std::function<bool(CrashPoint)>;

  struct OpenResult {
    Layout layout = Layout::kEmpty;
    /// Directory holding the legacy snapshot files (the snap.<N> dir or
    /// the session dir itself) for the legacy layouts.
    std::string legacy_dir;
    /// Legacy generation number (snap.<N>); engine numbering continues
    /// from it so pruning and fingerprints stay monotonic.
    uint64_t legacy_generation = 0;
    /// Section name -> text, verified against the manifest checksums
    /// (kEngine only).
    std::map<std::string, std::string> sections;
    /// WAL tail to replay on top of the sections, in sequence order.
    std::vector<WalRecord> wal;
    int64_t wal_dropped_bytes = 0;
    bool wal_truncated = false;
    uint64_t generation = 0;
  };

  SessionStore() = default;
  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  /// Opens (creating if needed) a session directory and classifies its
  /// layout. Always opens the WAL for appending — legacy layouts may
  /// carry a WAL too when a migration was interrupted mid-flight.
  Result<OpenResult> Open(const std::string& dir);

  bool is_open() const { return wal_.is_open(); }
  const std::string& dir() const { return dir_; }

  // --- write-ahead log ----------------------------------------------------

  /// Buffers one record body; returns its sequence number.
  uint64_t AppendWal(std::string_view body) { return wal_.Append(body); }

  /// Group commit: one write + one fsync for everything appended since
  /// the last commit. Journal-before-effect: call this before the
  /// mutations it records are acknowledged outside the session.
  Result<int64_t> CommitWal();

  // --- delta snapshots ----------------------------------------------------

  /// Writes generation N+1. `dirty` maps section name -> full new text
  /// for sections that changed; `live` lists every section the new
  /// manifest must carry (a live section absent from `dirty` is carried
  /// over from the previous manifest unchanged; a previously live
  /// section absent from `live` is dropped). After the manifest swap the
  /// WAL resets: its records are now owned by the generation.
  Status SaveGeneration(const std::map<std::string, std::string>& dirty,
                        const std::vector<std::string>& live);

  uint64_t generation() const { return generation_; }

  /// Sections carried by the current manifest, name -> file name.
  std::map<std::string, std::string> CurrentSectionFiles() const;

  const WriteAheadLog::Stats& wal_stats() const { return wal_.stats(); }

  struct SaveStats {
    int64_t generations = 0;
    int64_t sections_written = 0;
    int64_t sections_reused = 0;
    int64_t bytes_written = 0;
    int64_t files_pruned = 0;
  };
  const SaveStats& save_stats() const { return save_stats_; }

  void set_crash_hook(CrashHook hook) { crash_hook_ = std::move(hook); }

  /// Reads and verifies one section of the *current* manifest straight
  /// from disk (fingerprint tests).
  Result<std::string> ReadSection(const std::string& name) const;

 private:
  struct SectionFile {
    std::string file;
    uint64_t checksum = 0;
  };

  Status Crash(CrashPoint point);
  Status LoadManifest(const std::string& manifest_file, OpenResult* out);
  void PruneUnreferenced();

  std::string dir_;
  WriteAheadLog wal_;
  uint64_t generation_ = 0;
  uint64_t wal_base_ = 0;
  std::map<std::string, SectionFile> current_;  // live section -> file
  CrashHook crash_hook_;
  SaveStats save_stats_;
};

}  // namespace papyrus::storage

#endif  // PAPYRUS_STORAGE_ENGINE_H_
