#include "storage/reclamation.h"

#include <algorithm>

#include "base/macros.h"
#include "cache/derivation_cache.h"

namespace papyrus::storage {

using activity::DesignThread;
using activity::HistoryNode;
using activity::NodeId;

void ReclamationManager::ReclaimObjects(
    const std::vector<oct::ObjectId>& ids, ReclamationReport* report) {
  for (const oct::ObjectId& id : ids) {
    auto rec = db_->Peek(id);
    if (!rec.ok() || (*rec)->reclaimed) continue;
    int64_t bytes = (*rec)->size_bytes;
    // The derivation cache pins versions it may serve; dropping its
    // entries first releases the pins so Reclaim can proceed.
    if (cache_ != nullptr) cache_->OnVersionReclaimed(id);
    if (db_->Reclaim(id).ok()) {
      ++report->objects_reclaimed;
      report->bytes_reclaimed += bytes;
      total_bytes_reclaimed_ += bytes;
    }
  }
}

Result<ReclamationReport> ReclamationManager::VerticalAge(
    DesignThread* thread, int64_t older_than_micros) {
  ReclamationReport report;
  std::vector<NodeId> targets;
  for (const auto& [id, node] : thread->nodes()) {
    if (node.appended_micros < older_than_micros &&
        !node.record.steps.empty()) {
      targets.push_back(id);
    }
  }
  if (targets.empty()) return report;
  if (!Approve("vertical aging: forget step-level details of " +
                   std::to_string(targets.size()) + " old records",
               targets)) {
    return report;
  }
  for (NodeId id : targets) {
    std::vector<oct::ObjectId> intermediates;
    PAPYRUS_RETURN_IF_ERROR(thread->StripStepDetails(id, &intermediates));
    ++report.records_affected;
    ReclaimObjects(intermediates, &report);
  }
  return report;
}

Result<ReclamationReport> ReclamationManager::HorizontalAge(
    DesignThread* thread, int64_t older_than_micros) {
  ReclamationReport report;
  // Walk the linear prefix from the root while records are old enough.
  if (thread->nodes().empty()) return report;
  // Find the unique root; bail out when the stream starts branched.
  std::vector<NodeId> roots;
  for (const auto& [id, node] : thread->nodes()) {
    if (node.parents.empty()) roots.push_back(id);
  }
  if (roots.size() != 1) return report;

  NodeId cur = roots[0];
  std::vector<NodeId> prefix;
  while (true) {
    auto node = thread->GetNode(cur);
    if (!node.ok()) break;
    if ((*node)->appended_micros >= older_than_micros) break;
    if ((*node)->children.size() != 1) break;  // keep branch structure
    prefix.push_back(cur);
    cur = (*node)->children[0];
  }
  if (prefix.empty()) return report;
  if (!Approve("horizontal aging: prune " +
                   std::to_string(prefix.size()) +
                   " records too far back in time",
               prefix)) {
    return report;
  }
  // `cur` is the first record to keep.
  std::vector<oct::ObjectId> unreferenced;
  PAPYRUS_RETURN_IF_ERROR(thread->PrunePrefix(cur, &unreferenced));
  report.records_affected = static_cast<int>(prefix.size());
  ReclaimObjects(unreferenced, &report);
  return report;
}

Result<ReclamationReport> ReclamationManager::AbstractIterations(
    DesignThread* thread,
    const std::vector<std::vector<NodeId>>& rounds) {
  ReclamationReport report;
  std::set<NodeId> iteration_nodes;
  for (const auto& round : rounds) {
    for (NodeId id : round) iteration_nodes.insert(id);
  }
  // Outputs consumed by records outside the iteration.
  std::set<oct::ObjectId> external_inputs;
  for (const auto& [id, node] : thread->nodes()) {
    if (iteration_nodes.count(id) > 0) continue;
    for (const oct::ObjectId& in : node.record.inputs) {
      external_inputs.insert(in);
    }
  }
  std::vector<std::vector<NodeId>> doomed_rounds;
  for (const auto& round : rounds) {
    bool used = false;
    for (NodeId id : round) {
      auto node = thread->GetNode(id);
      if (!node.ok()) {
        return Status::NotFound("iteration hint names missing record " +
                                std::to_string(id));
      }
      for (const oct::ObjectId& out : (*node)->record.outputs) {
        if (external_inputs.count(out) > 0) used = true;
      }
    }
    if (!used) doomed_rounds.push_back(round);
  }
  // Keep at least one representative round even if nothing is consumed
  // downstream yet (the final round is the result of the refinement).
  if (doomed_rounds.size() == rounds.size() && !doomed_rounds.empty()) {
    doomed_rounds.pop_back();
  }
  if (doomed_rounds.empty()) return report;
  std::vector<NodeId> all_doomed;
  for (const auto& round : doomed_rounds) {
    all_doomed.insert(all_doomed.end(), round.begin(), round.end());
  }
  if (!Approve("garbage collection: abstract " +
                   std::to_string(doomed_rounds.size()) +
                   " abandoned iteration rounds",
               all_doomed)) {
    return report;
  }
  for (NodeId id : all_doomed) {
    std::vector<oct::ObjectId> unreferenced;
    PAPYRUS_RETURN_IF_ERROR(thread->SpliceOutNode(id, &unreferenced));
    ++report.records_affected;
    ReclaimObjects(unreferenced, &report);
  }
  return report;
}

Result<ReclamationReport> ReclamationManager::PruneDeadBranches(
    DesignThread* thread, int64_t unaccessed_micros) {
  ReclamationReport report;
  int64_t now = clock_->NowMicros();
  // A dead branch: a frontier whose tip is stale; erase back to (but not
  // including) the nearest ancestor with other live descendants.
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId frontier : thread->FrontierCursors()) {
      if (frontier == activity::kInitialPoint) continue;
      if (frontier == thread->current_cursor()) continue;
      auto node = thread->GetNode(frontier);
      if (!node.ok()) continue;
      if (now - (*node)->last_access_micros < unaccessed_micros) continue;
      // Walk up while the chain is linear and stale.
      NodeId branch_root = frontier;
      while (true) {
        auto n = thread->GetNode(branch_root);
        if (!n.ok() || (*n)->parents.size() != 1) break;
        auto parent = thread->GetNode((*n)->parents[0]);
        if (!parent.ok()) break;
        if ((*parent)->children.size() != 1) break;  // branch point above
        if (now - (*parent)->last_access_micros < unaccessed_micros) break;
        if ((*parent)->id == thread->current_cursor()) break;
        branch_root = (*parent)->id;
      }
      if (!Approve("garbage collection: prune dead-end branch at record " +
                       std::to_string(branch_root),
                   {branch_root})) {
        continue;
      }
      std::vector<oct::ObjectId> unreferenced;
      int before = thread->size();
      PAPYRUS_RETURN_IF_ERROR(
          thread->EraseSubtree(branch_root, &unreferenced));
      report.records_affected += before - thread->size();
      ReclaimObjects(unreferenced, &report);
      changed = true;
      break;  // frontier list invalidated; rescan
    }
  }
  return report;
}

}  // namespace papyrus::storage
