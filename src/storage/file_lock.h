#ifndef PAPYRUS_STORAGE_FILE_LOCK_H_
#define PAPYRUS_STORAGE_FILE_LOCK_H_

#include <memory>
#include <string>

#include "base/result.h"
#include "base/status.h"

namespace papyrus::storage {

/// An advisory whole-file lock (flock) used to coordinate independent
/// papyrusd processes sharing one daemon root:
///
///   * the persistent queue takes the lock around every journal append
///     so concurrent workers serialize their state transitions, and
///   * each worker holds a session's lock for as long as it hosts the
///     session, so exactly one process ever writes its snapshots.
///
/// Locks are per open-file-description: two FileLock instances on the
/// same path conflict even inside one process, which lets the tests
/// exercise the multi-worker protocol without spawning processes. The
/// kernel drops the lock automatically when the holder dies, so a
/// crashed worker never wedges the queue — the survivors just acquire
/// it on their next operation.
class FileLock {
 public:
  /// Blocks until the lock on `path` (created if missing) is held.
  static Result<std::unique_ptr<FileLock>> Acquire(const std::string& path);

  /// Non-blocking acquire. Returns Unavailable when another holder
  /// (process or open description) has the lock right now.
  static Result<std::unique_ptr<FileLock>> TryAcquire(
      const std::string& path);

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  ~FileLock();

  const std::string& path() const { return path_; }

 private:
  FileLock(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  static Result<std::unique_ptr<FileLock>> AcquireImpl(
      const std::string& path, bool blocking);

  std::string path_;
  int fd_ = -1;
};

}  // namespace papyrus::storage

#endif  // PAPYRUS_STORAGE_FILE_LOCK_H_
