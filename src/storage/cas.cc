#include "storage/cas.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "base/hash.h"
#include "base/macros.h"
#include "base/strings.h"
#include "storage/atomic_file.h"

namespace papyrus::storage {

namespace {

constexpr char kStateFile[] = "cas.state";
constexpr char kJournalFile[] = "cas.journal";
constexpr char kStateHeader[] = "papyrus-cas v1";
/// Trace track under the session process group (0 = session, 1 = oct
/// database, 2 = fault injector).
constexpr int64_t kCasTrackTid = 3;

std::string HexHash(std::string_view body) {
  std::ostringstream out;
  out << std::hex << Fnv1a(body);
  return out.str();
}

/// Appends the ` !<hex>` line checksum the v2 snapshot format uses.
std::string Stamp(const std::string& body) {
  return body + " !" + HexHash(body);
}

/// Validates and strips a line checksum; false on damage.
bool Unstamp(const std::string& line, std::string* body) {
  size_t mark = line.rfind(" !");
  if (mark == std::string::npos) return false;
  *body = line.substr(0, mark);
  return HexHash(*body) == line.substr(mark + 2);
}

std::string EncField(const std::string& s) {
  return "~" + PercentEncode(s);
}

std::string DecField(const std::string& token) {
  if (!token.empty() && token[0] == '~') {
    return PercentDecode(token.substr(1));
  }
  return PercentDecode(token);
}

std::string FormatHex64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

bool ParseHex64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end != nullptr && *end == '\0';
}

/// A well-formed blob hash as produced by Sha256Hex.
bool LooksLikeHash(const std::string& s) {
  if (s.size() != 2 * Sha256::kDigestBytes) return false;
  for (char c : s) {
    if (!(('0' <= c && c <= '9') || ('a' <= c && c <= 'f'))) return false;
  }
  return true;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("cannot read " + path);
  }
  return buf.str();
}

}  // namespace

ContentStore::ContentStore(std::string root, const CasOptions& options)
    : root_(std::move(root)), options_(options) {}

ContentStore::~ContentStore() = default;

Result<std::unique_ptr<ContentStore>> ContentStore::Open(
    const std::string& root, const CasOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(root) / "blobs", ec);
  if (ec) {
    return Status::Internal("cannot create CAS directory " + root + ": " +
                            ec.message());
  }
  std::unique_ptr<ContentStore> store(new ContentStore(root, options));
  base::MutexLock lock(store->mu_);
  PAPYRUS_RETURN_IF_ERROR(store->LoadCheckpoint());
  PAPYRUS_RETURN_IF_ERROR(store->ReplayJournal());

  // Ref-counts are derived from the recovered entry index, never trusted
  // from disk: counts cannot be inconsistent with the entries that exist.
  store->blobs_.clear();
  store->total_bytes_ = 0;
  for (const auto& [key, entry] : store->entries_) {
    for (const CasOutput& out : entry.outputs) {
      Blob& blob = store->blobs_[out.blob_hash];
      if (blob.refs == 0) {
        blob.size_bytes = out.size_bytes;
        store->total_bytes_ += out.size_bytes;
      }
      ++blob.refs;
    }
  }

  // An entry whose blob file vanished (partial crash, manual damage) can
  // never be fetched; drop it now so the index matches the disk.
  std::vector<std::string> broken;
  for (const auto& [key, entry] : store->entries_) {
    for (const CasOutput& out : entry.outputs) {
      if (!std::filesystem::exists(store->BlobPath(out.blob_hash), ec)) {
        broken.push_back(key);
        break;
      }
    }
  }
  for (const std::string& key : broken) {
    (void)store->DropEntry(key, /*journal=*/false);
  }

  PAPYRUS_RETURN_IF_ERROR(store->CollectOrphans());

  // Checkpoint the recovered state: the journal restarts empty and the
  // orphan collection above becomes durable.
  PAPYRUS_RETURN_IF_ERROR(store->WriteCheckpoint());
  return store;
}

std::string ContentStore::BlobPath(const std::string& hash) const {
  return (std::filesystem::path(root_) / "blobs" / hash.substr(0, 2) / hash)
      .string();
}

std::string ContentStore::PutRecord(const std::string& key,
                                    const Entry& entry) {
  std::ostringstream body;
  body << "put " << EncField(key) << ' ' << EncField(entry.meta.tool) << ' '
       << EncField(entry.meta.tool_version) << ' '
       << EncField(entry.meta.canonical_options) << ' '
       << FormatHex64(entry.meta.seed_salt) << ' ' << entry.meta.cost_micros
       << ' ' << entry.lru_seq << ' ' << entry.outputs.size();
  for (const CasOutput& out : entry.outputs) {
    body << ' ' << EncField(out.name_hint) << ' ' << (out.visible ? 1 : 0)
         << ' ' << out.blob_hash << ' ' << out.size_bytes;
  }
  return body.str();
}

Status ContentStore::ApplyJournalLine(const std::vector<std::string>& f) {
  if (f.empty()) return Status::OK();
  if (f[0] == "seq" && f.size() == 2) {
    int64_t seq = 0;
    if (ParseInt64(f[1], &seq)) {
      next_lru_seq_ = std::max(next_lru_seq_, seq);
    }
    return Status::OK();
  }
  if (f[0] == "put" && f.size() >= 9) {
    Entry entry;
    std::string key = DecField(f[1]);
    entry.meta.tool = DecField(f[2]);
    entry.meta.tool_version = DecField(f[3]);
    entry.meta.canonical_options = DecField(f[4]);
    uint64_t salt = 0;
    if (!ParseHex64(f[5], &salt)) return Status::OK();
    entry.meta.seed_salt = salt;
    if (!ParseInt64(f[6], &entry.meta.cost_micros) ||
        !ParseInt64(f[7], &entry.lru_seq)) {
      return Status::OK();
    }
    int64_t nout = 0;
    if (!ParseInt64(f[8], &nout) || nout < 0 ||
        f.size() < 9 + 4 * static_cast<size_t>(nout)) {
      return Status::OK();
    }
    for (int64_t i = 0; i < nout; ++i) {
      size_t at = 9 + 4 * static_cast<size_t>(i);
      CasOutput out;
      out.name_hint = DecField(f[at]);
      out.visible = f[at + 1] == "1";
      out.blob_hash = f[at + 2];
      if (!LooksLikeHash(out.blob_hash) ||
          !ParseInt64(f[at + 3], &out.size_bytes)) {
        return Status::OK();
      }
      entry.outputs.push_back(std::move(out));
    }
    next_lru_seq_ = std::max(next_lru_seq_, entry.lru_seq + 1);
    entries_[key] = std::move(entry);
    return Status::OK();
  }
  if (f[0] == "del" && f.size() == 2) {
    entries_.erase(DecField(f[1]));
    return Status::OK();
  }
  if (f[0] == "touch" && f.size() == 3) {
    int64_t seq = 0;
    auto it = entries_.find(DecField(f[1]));
    if (it != entries_.end() && ParseInt64(f[2], &seq)) {
      it->second.lru_seq = seq;
      next_lru_seq_ = std::max(next_lru_seq_, seq + 1);
    }
    return Status::OK();
  }
  return Status::OK();  // unknown records are skipped, not fatal
}

Status ContentStore::LoadCheckpoint() {
  std::string path =
      (std::filesystem::path(root_) / kStateFile).string();
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::OK();  // fresh store
  std::string line;
  if (!std::getline(in, line) || line != kStateHeader) {
    return Status::Internal("bad CAS checkpoint header in " + path);
  }
  while (std::getline(in, line)) {
    std::string body;
    if (!Unstamp(line, &body)) break;  // damaged tail: keep the prefix
    PAPYRUS_RETURN_IF_ERROR(ApplyJournalLine(SplitWhitespace(body)));
  }
  return Status::OK();
}

Status ContentStore::ReplayJournal() {
  std::string path =
      (std::filesystem::path(root_) / kJournalFile).string();
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::OK();
  std::string line;
  while (std::getline(in, line)) {
    std::string body;
    // A torn or corrupted line ends the valid prefix; everything after
    // it never durably happened.
    if (!Unstamp(line, &body)) break;
    PAPYRUS_RETURN_IF_ERROR(ApplyJournalLine(SplitWhitespace(body)));
  }
  return Status::OK();
}

Status ContentStore::CollectOrphans() {
  std::error_code ec;
  std::filesystem::path blobs_dir = std::filesystem::path(root_) / "blobs";
  std::vector<std::filesystem::path> orphans;
  for (const auto& shard :
       std::filesystem::directory_iterator(blobs_dir, ec)) {
    if (!shard.is_directory()) continue;
    for (const auto& file :
         std::filesystem::directory_iterator(shard.path(), ec)) {
      std::string hash = file.path().filename().string();
      if (blobs_.count(hash) == 0) orphans.push_back(file.path());
    }
  }
  for (const std::filesystem::path& path : orphans) {
    std::filesystem::remove(path, ec);
    ++stats_.orphans_collected;
  }
  return Status::OK();
}

Status ContentStore::AppendJournal(const std::string& body) {
  journal_ << Stamp(body) << '\n';
  journal_.flush();
  if (!journal_) {
    return Status::Internal("cannot append to CAS journal under " + root_);
  }
  ++journal_appends_;
  return Status::OK();
}

Status ContentStore::WriteCheckpoint() {
  std::ostringstream out;
  out << kStateHeader << '\n';
  {
    std::ostringstream seq;
    seq << "seq " << next_lru_seq_;
    out << Stamp(seq.str()) << '\n';
  }
  for (const auto& [key, entry] : entries_) {
    out << Stamp(PutRecord(key, entry)) << '\n';
  }
  std::string state_path =
      (std::filesystem::path(root_) / kStateFile).string();
  std::string journal_path =
      (std::filesystem::path(root_) / kJournalFile).string();
  PAPYRUS_RETURN_IF_ERROR(AtomicWriteFile(state_path, out.str()));
  // The journal restarts empty only after the checkpoint that covers it
  // landed; a crash in between replays stale records over the new
  // checkpoint, which Apply makes idempotent.
  journal_.close();
  PAPYRUS_RETURN_IF_ERROR(AtomicWriteFile(journal_path, ""));
  journal_.clear();
  journal_.open(journal_path, std::ios::app | std::ios::binary);
  if (!journal_) {
    return Status::Internal("cannot reopen CAS journal under " + root_);
  }
  journal_appends_ = 0;
  return Status::OK();
}

Status ContentStore::MaybeCheckpoint() {
  if (options_.checkpoint_interval <= 0 ||
      journal_appends_ < options_.checkpoint_interval) {
    return Status::OK();
  }
  return WriteCheckpoint();
}

void ContentStore::IndexEntry(const std::string& key, Entry entry) {
  for (const CasOutput& out : entry.outputs) {
    Blob& blob = blobs_[out.blob_hash];
    if (blob.refs == 0) {
      blob.size_bytes = out.size_bytes;
      total_bytes_ += out.size_bytes;
    }
    ++blob.refs;
  }
  entries_[key] = std::move(entry);
}

int64_t ContentStore::DropEntry(const std::string& key, bool journal) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0;
  if (journal) {
    (void)AppendJournal("del " + EncField(key));
  }
  int64_t freed = 0;
  std::error_code ec;
  for (const CasOutput& out : it->second.outputs) {
    auto bit = blobs_.find(out.blob_hash);
    if (bit == blobs_.end()) continue;
    if (--bit->second.refs == 0) {
      // Last reference: only now may the blob file go. A blob still
      // ref'd by any other entry is never reclaimed.
      freed += bit->second.size_bytes;
      total_bytes_ -= bit->second.size_bytes;
      std::filesystem::remove(BlobPath(out.blob_hash), ec);
      blobs_.erase(bit);
    }
  }
  entries_.erase(it);
  return freed;
}

void ContentStore::EnforceBudget(const std::string& keep) {
  if (options_.size_budget_bytes <= 0) return;
  while (total_bytes_ > options_.size_budget_bytes) {
    const std::string* victim = nullptr;
    int64_t oldest = 0;
    for (const auto& [key, entry] : entries_) {
      if (key == keep) continue;
      if (victim == nullptr || entry.lru_seq < oldest) {
        victim = &key;
        oldest = entry.lru_seq;
      }
    }
    if (victim == nullptr) return;  // nothing left but the protected entry
    std::string victim_key = *victim;
    int64_t freed = DropEntry(victim_key, /*journal=*/true);
    ++stats_.evicted_entries;
    stats_.evicted_bytes += freed;
    if (c_evicted_entries_ != nullptr) c_evicted_entries_->Increment();
    if (c_evicted_bytes_ != nullptr) c_evicted_bytes_->Increment(freed);
    if (obs_.trace != nullptr) {
      obs_.trace->Instant(obs::kSessionPid, kCasTrackTid, "cas_evict",
                          "cas",
                          {obs::TraceArg::Int("freed_bytes", freed)});
    }
  }
}

bool ContentStore::NegativeHit(const std::string& key) {
  if (negative_.count(key) == 0) return false;
  ++stats_.neg_hits;
  if (c_neg_hits_ != nullptr) c_neg_hits_->Increment();
  return true;
}

void ContentStore::RememberAbsent(const std::string& key) {
  constexpr size_t kNegativeCap = 4096;
  if (!negative_.insert(key).second) return;
  negative_fifo_.push_back(key);
  while (negative_.size() > kNegativeCap && !negative_fifo_.empty()) {
    // Deque entries Publish already invalidated are strays; skip them.
    negative_.erase(negative_fifo_.front());
    negative_fifo_.pop_front();
  }
}

Status ContentStore::Publish(const std::string& key,
                             const CasEntryMeta& meta,
                             const std::vector<CasPublishOutput>& outputs) {
  base::MutexLock lock(mu_);
  // The key is about to exist: a stale negative entry must never mask it.
  negative_.erase(key);
  Entry entry;
  entry.meta = meta;
  entry.lru_seq = next_lru_seq_++;
  int64_t entry_bytes = 0;
  for (const CasPublishOutput& out : outputs) {
    CasOutput stored;
    stored.name_hint = out.name_hint;
    stored.visible = out.visible;
    stored.blob_hash = Sha256Hex(out.bytes);
    stored.size_bytes = static_cast<int64_t>(out.bytes.size());
    entry_bytes += stored.size_bytes;
    entry.outputs.push_back(std::move(stored));
  }

  auto existing = entries_.find(key);
  if (existing != entries_.end()) {
    bool same = existing->second.outputs.size() == entry.outputs.size();
    for (size_t i = 0; same && i < entry.outputs.size(); ++i) {
      same = existing->second.outputs[i].blob_hash ==
             entry.outputs[i].blob_hash;
    }
    if (same) {
      // Re-derivation of known content (another session ran the same
      // step): nothing to store, the whole entry deduplicates.
      stats_.dedup_bytes += entry_bytes;
      if (c_dedup_bytes_ != nullptr) c_dedup_bytes_->Increment(entry_bytes);
      existing->second.lru_seq = entry.lru_seq;
      (void)AppendJournal("touch " + EncField(key) + ' ' +
                          std::to_string(entry.lru_seq));
      RefreshGauges();
      return MaybeCheckpoint();
    }
    // Same key, different bytes: the prior entry is stale (or was
    // produced by a nondeterministic tool) — replace it.
    (void)DropEntry(key, /*journal=*/true);
  }

  // Blob files land before the journal record that makes the entry
  // exist; a crash in between leaves orphans for Open() to collect.
  std::error_code ec;
  for (size_t i = 0; i < entry.outputs.size(); ++i) {
    const CasOutput& stored = entry.outputs[i];
    if (blobs_.count(stored.blob_hash) != 0) {
      stats_.dedup_bytes += stored.size_bytes;
      if (c_dedup_bytes_ != nullptr) {
        c_dedup_bytes_->Increment(stored.size_bytes);
      }
      continue;
    }
    std::string path = BlobPath(stored.blob_hash);
    if (std::filesystem::exists(path, ec)) continue;  // crash leftover
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    PAPYRUS_RETURN_IF_ERROR(AtomicWriteFile(path, outputs[i].bytes));
    stats_.bytes_written += stored.size_bytes;
    if (c_bytes_written_ != nullptr) {
      c_bytes_written_->Increment(stored.size_bytes);
    }
  }
  PAPYRUS_RETURN_IF_ERROR(AppendJournal(PutRecord(key, entry)));
  IndexEntry(key, std::move(entry));
  ++stats_.published;
  if (c_published_ != nullptr) c_published_->Increment();
  EnforceBudget(key);
  RefreshGauges();
  return MaybeCheckpoint();
}

Result<CasFetchResult> ContentStore::Fetch(const std::string& key) {
  base::MutexLock lock(mu_);
  if (NegativeHit(key)) {
    ++stats_.misses;
    if (c_misses_ != nullptr) c_misses_->Increment();
    return Status::NotFound("no CAS entry for key (negative-cached)");
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (c_misses_ != nullptr) c_misses_->Increment();
    RememberAbsent(key);
    return Status::NotFound("no CAS entry for key");
  }
  CasFetchResult result;
  result.meta = it->second.meta;
  for (const CasOutput& out : it->second.outputs) {
    auto bytes = ReadFileBytes(BlobPath(out.blob_hash));
    if (!bytes.ok() || Sha256Hex(*bytes) != out.blob_hash) {
      // Bit rot (or a missing file): never hand out unverified bytes.
      // Dropping the entry makes the caller re-run the tool and
      // republish clean content.
      ++stats_.verify_failures;
      if (c_verify_failures_ != nullptr) c_verify_failures_->Increment();
      if (obs_.trace != nullptr) {
        obs_.trace->Instant(
            obs::kSessionPid, kCasTrackTid, "cas_verify_failure", "cas",
            {obs::TraceArg::Str("blob", out.blob_hash)});
      }
      (void)DropEntry(key, /*journal=*/true);
      RefreshGauges();
      return Status::Aborted("CAS blob failed hash verification");
    }
    CasFetchedOutput fetched;
    fetched.name_hint = out.name_hint;
    fetched.visible = out.visible;
    fetched.blob_hash = out.blob_hash;
    fetched.bytes = std::move(*bytes);
    result.outputs.push_back(std::move(fetched));
  }
  it->second.lru_seq = next_lru_seq_++;
  (void)AppendJournal("touch " + EncField(key) + ' ' +
                      std::to_string(it->second.lru_seq));
  ++stats_.hits;
  if (c_hits_ != nullptr) c_hits_->Increment();
  (void)MaybeCheckpoint();
  return result;
}

bool ContentStore::Contains(const std::string& key) {
  base::MutexLock lock(mu_);
  if (NegativeHit(key)) return false;
  if (entries_.count(key) != 0) return true;
  RememberAbsent(key);
  return false;
}

Status ContentStore::Checkpoint() {
  base::MutexLock lock(mu_);
  return WriteCheckpoint();
}

CasStats ContentStore::stats() {
  base::MutexLock lock(mu_);
  CasStats snapshot = stats_;
  snapshot.entries = static_cast<int64_t>(entries_.size());
  snapshot.blobs = static_cast<int64_t>(blobs_.size());
  snapshot.live_blobs = 0;
  snapshot.evictable_blobs = 0;
  for (const auto& [hash, blob] : blobs_) {
    if (blob.refs >= 2) {
      ++snapshot.live_blobs;
    } else {
      ++snapshot.evictable_blobs;
    }
  }
  snapshot.total_bytes = total_bytes_;
  snapshot.neg_entries = static_cast<int64_t>(negative_.size());
  return snapshot;
}

void ContentStore::RefreshGauges() {
  if (g_entries_ != nullptr) {
    g_entries_->Set(static_cast<int64_t>(entries_.size()));
  }
  if (g_blobs_ != nullptr) {
    g_blobs_->Set(static_cast<int64_t>(blobs_.size()));
  }
  if (g_bytes_ != nullptr) g_bytes_->Set(total_bytes_);
}

void ContentStore::set_observability(const obs::Observability& sinks) {
  base::MutexLock lock(mu_);
  obs_ = sinks;
  if (obs_.metrics != nullptr) {
    c_hits_ = obs_.metrics->FindOrCreateCounter(obs::kCasHits);
    c_misses_ = obs_.metrics->FindOrCreateCounter(obs::kCasMisses);
    c_published_ = obs_.metrics->FindOrCreateCounter(obs::kCasPublished);
    c_dedup_bytes_ =
        obs_.metrics->FindOrCreateCounter(obs::kCasDedupBytes);
    c_bytes_written_ =
        obs_.metrics->FindOrCreateCounter(obs::kCasBytesWritten);
    c_evicted_entries_ =
        obs_.metrics->FindOrCreateCounter(obs::kCasEvictedEntries);
    c_evicted_bytes_ =
        obs_.metrics->FindOrCreateCounter(obs::kCasEvictedBytes);
    c_verify_failures_ =
        obs_.metrics->FindOrCreateCounter(obs::kCasVerifyFailures);
    c_orphans_ =
        obs_.metrics->FindOrCreateCounter(obs::kCasOrphansCollected);
    c_neg_hits_ = obs_.metrics->FindOrCreateCounter(obs::kCasNegHits);
    g_entries_ = obs_.metrics->FindOrCreateGauge(obs::kCasEntries);
    g_blobs_ = obs_.metrics->FindOrCreateGauge(obs::kCasBlobs);
    g_bytes_ = obs_.metrics->FindOrCreateGauge(obs::kCasStoreBytes);
    // Surface state accumulated before the sinks were attached (orphan
    // GC at Open, the recovered index shape).
    c_orphans_->Increment(stats_.orphans_collected - c_orphans_->value());
    RefreshGauges();
  } else {
    c_hits_ = c_misses_ = c_published_ = c_dedup_bytes_ = nullptr;
    c_bytes_written_ = c_evicted_entries_ = c_evicted_bytes_ = nullptr;
    c_verify_failures_ = c_orphans_ = c_neg_hits_ = nullptr;
    g_entries_ = g_blobs_ = nullptr;
    g_bytes_ = nullptr;
  }
  if (obs_.trace != nullptr) {
    obs_.trace->SetThreadName(obs::kSessionPid, kCasTrackTid,
                              "cas store");
  }
}

}  // namespace papyrus::storage
