#ifndef PAPYRUS_SERVER_WIRE_H_
#define PAPYRUS_SERVER_WIRE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace papyrus::server {

/// The papyrusd wire protocol: one request line in, one response line
/// out, so the shell and `mosaico_flow` can drive a daemon as thin
/// clients over any line-oriented transport (a pipe in the tests).
///
///   request  := verb (' ' '~' key '=' value)*
///   response := "ok" fields... | "err" ~msg=...
///
/// Keys and values are wire-escaped (percent-encoding extended to the
/// protocol's structural characters), so arbitrary option strings and
/// object names survive the round trip. Task descriptions reuse the same
/// key=value form, making every queued task self-describing: the journal
/// entry alone carries everything needed to re-dispatch it after a
/// restart (the CRISTAL-style description-driven queue).

/// Percent-encodes whitespace, control characters, '%', and the wire's
/// structural characters ('~', '=', ','). PercentDecode inverts it.
std::string WireEscape(std::string_view s);

/// One parsed wire line: a verb plus ordered key=value fields.
struct WireMessage {
  std::string verb;
  std::vector<std::pair<std::string, std::string>> fields;

  /// First value for `key`, or nullptr.
  const std::string* Find(const std::string& key) const;
  /// Every value for `key`, in order (repeated keys form lists).
  std::vector<std::string> FindAll(const std::string& key) const;

  void Add(const std::string& key, const std::string& value);

  /// Renders "verb ~k=v ~k2=v2" with escaped keys and values.
  std::string Format() const;
  static Result<WireMessage> Parse(const std::string& line);
};

/// A self-describing queued task: which session and design thread it
/// targets and the full activity invocation to run there.
struct TaskDescription {
  std::string session;
  std::string thread;
  std::string template_name;
  std::vector<std::string> input_refs;
  std::vector<std::string> output_names;
  /// Step name -> replacement option string (the §4.3.1 "New Options:").
  std::map<std::string, std::string> option_overrides;
  uint64_t seed = 1;

  /// Single-line encoding stored verbatim in the queue journal.
  std::string Encode() const;
  static Result<TaskDescription> Decode(const std::string& encoded);
};

}  // namespace papyrus::server

#endif  // PAPYRUS_SERVER_WIRE_H_
