#include "server/wire.h"

#include <sstream>

#include "base/macros.h"
#include "base/strings.h"

namespace papyrus::server {

std::string WireEscape(std::string_view s) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || c == '%' || c == '~' || c == '=' || c == ',' ||
        u == 0x7f) {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

const std::string* WireMessage::Find(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::vector<std::string> WireMessage::FindAll(
    const std::string& key) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : fields) {
    if (k == key) out.push_back(v);
  }
  return out;
}

void WireMessage::Add(const std::string& key, const std::string& value) {
  fields.emplace_back(key, value);
}

std::string WireMessage::Format() const {
  std::ostringstream out;
  out << verb;
  for (const auto& [k, v] : fields) {
    out << " ~" << WireEscape(k) << '=' << WireEscape(v);
  }
  return out.str();
}

Result<WireMessage> WireMessage::Parse(const std::string& line) {
  std::vector<std::string> tokens = SplitWhitespace(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty wire line");
  }
  WireMessage msg;
  msg.verb = tokens[0];
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.empty() || tok[0] != '~') {
      return Status::InvalidArgument("malformed wire field \"" + tok +
                                     "\" (expected ~key=value)");
    }
    size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("wire field \"" + tok +
                                     "\" has no '='");
    }
    PAPYRUS_ASSIGN_OR_RETURN(
        std::string key, PercentDecodeStrict(tok.substr(1, eq - 1)));
    PAPYRUS_ASSIGN_OR_RETURN(std::string value,
                             PercentDecodeStrict(tok.substr(eq + 1)));
    msg.fields.emplace_back(std::move(key), std::move(value));
  }
  return msg;
}

std::string TaskDescription::Encode() const {
  WireMessage msg;
  msg.verb = "task";
  msg.Add("session", session);
  msg.Add("thread", thread);
  msg.Add("template", template_name);
  msg.Add("seed", std::to_string(seed));
  for (const std::string& ref : input_refs) msg.Add("in", ref);
  for (const std::string& name : output_names) msg.Add("out", name);
  for (const auto& [step, options] : option_overrides) {
    msg.Add("opt." + step, options);
  }
  return msg.Format();
}

Result<TaskDescription> TaskDescription::Decode(
    const std::string& encoded) {
  PAPYRUS_ASSIGN_OR_RETURN(WireMessage msg, WireMessage::Parse(encoded));
  if (msg.verb != "task") {
    return Status::InvalidArgument("not a task description: \"" +
                                   msg.verb + "\"");
  }
  TaskDescription desc;
  for (const auto& [key, value] : msg.fields) {
    if (key == "session") {
      desc.session = value;
    } else if (key == "thread") {
      desc.thread = value;
    } else if (key == "template") {
      desc.template_name = value;
    } else if (key == "seed") {
      int64_t seed = 0;
      if (!ParseInt64(value, &seed) || seed < 0) {
        return Status::InvalidArgument("bad seed \"" + value + "\"");
      }
      desc.seed = static_cast<uint64_t>(seed);
    } else if (key == "in") {
      desc.input_refs.push_back(value);
    } else if (key == "out") {
      desc.output_names.push_back(value);
    } else if (key.rfind("opt.", 0) == 0) {
      desc.option_overrides[key.substr(4)] = value;
    } else {
      return Status::InvalidArgument("unknown task field \"" + key +
                                     "\"");
    }
  }
  if (desc.session.empty() || desc.thread.empty() ||
      desc.template_name.empty()) {
    return Status::InvalidArgument(
        "task description needs session, thread, and template");
  }
  return desc;
}

}  // namespace papyrus::server
