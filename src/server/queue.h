#ifndef PAPYRUS_SERVER_QUEUE_H_
#define PAPYRUS_SERVER_QUEUE_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/clock.h"
#include "base/result.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "obs/observability.h"
#include "storage/file_lock.h"

namespace papyrus::server {

/// Lifecycle of a queued task:
///
///   pending --Claim--> claimed --Complete--> done
///      ^                  |   \--Fail-----> failed
///      |                  |
///      +---Release--------+        (execution error, retry later)
///      +---ExpireLeases---+        (lease deadline passed)
///      +---Open-----------+        (daemon restart: claims are orphaned)
enum class TaskState { kPending, kClaimed, kDone, kFailed };

const char* TaskStateName(TaskState state);

/// One task in the persistent queue.
struct QueueTask {
  int64_t id = 0;
  std::string session;      // target session name
  std::string description;  // encoded wire::TaskDescription, verbatim
  TaskState state = TaskState::kPending;
  /// Claims granted so far (== execution attempts started).
  int attempts = 0;
  int64_t enqueue_micros = 0;
  /// Virtual-time deadline of the current lease (claimed tasks only).
  int64_t lease_deadline_micros = 0;
  /// Claim token of the current (or last) lease holder.
  std::string owner;
  /// Failure reason (failed tasks only).
  std::string failure;
};

/// How Claim picks the next task. The default (fair == false) is global
/// FIFO: the lowest-id pending task, whatever its session — one heavy
/// session can monopolize the daemon. With fair == true, claims rotate
/// weighted-round-robin across sessions that have pending work: each
/// rotation stop serves up to `weight` tasks (in id order) from one
/// session before the cursor advances, sessions with more in-flight
/// (claimed) tasks than `max_inflight_per_session` are passed over until
/// some complete, and `session_filter` (when set) masks sessions this
/// claimer cannot currently host (e.g. locked by another worker
/// process). Within a session, claim order is always ascending task id,
/// so per-session execution — and therefore every session snapshot — is
/// byte-identical whichever policy interleaves the sessions.
struct ClaimPolicy {
  bool fair = false;
  /// Max claimed-but-unresolved tasks per session (0 = unlimited).
  int max_inflight_per_session = 0;
  /// Per-session weight: rotation stops serve this many tasks before
  /// moving on. Missing sessions (or null) weigh 1.
  const std::map<std::string, int>* weights = nullptr;
  /// Returns false for sessions this claimer must not serve right now.
  std::function<bool(const std::string&)> session_filter;
};

/// One granted claim, in grant order (in-memory; for fairness audits).
struct ClaimRecord {
  int64_t id = 0;
  std::string session;
};

struct QueueOptions {
  /// Multi-process mode: every mutating operation takes the `queue.lock`
  /// flock, re-syncs journal lines appended by other workers since the
  /// last look, then appends its own. Claims orphaned by a dead worker
  /// are NOT re-pended at Open (live workers hold real leases); they
  /// return via lease expiry, and the stale-owner check keeps a reaped
  /// worker from completing a task that was re-claimed.
  bool shared = false;
};

/// The crash-surviving task queue behind papyrusd.
///
/// Durability = an append-only journal (`queue.pjq`) replayed over the
/// last atomic checkpoint (`queue.pjc`). Every state transition is
/// journaled *before* it takes effect in memory: a task is on disk from
/// the moment Enqueue returns, and a claim, completion, or failure that
/// was acknowledged survives any later crash. Journal lines carry the
/// same ` !<hex>` FNV-1a line checksums as the v2 snapshot format; replay
/// stops at the first damaged line, recovering the longest valid prefix.
///
/// Leases make dispatch crash-safe without distributed coordination: a
/// claim holds a virtual-time lease, and a lease that expires (or is
/// found dangling when the queue reopens after a crash) returns the task
/// to pending for re-dispatch. Combined with the daemon's applied-task
/// ledger this yields at-least-once execution with exactly-once commit.
///
/// In shared mode (QueueOptions::shared) many worker processes open the
/// same directory: the journal becomes the coordination medium — each
/// operation serializes on an flock, replays the other workers' appended
/// lines, then appends its own — so claim/lease/stale-owner semantics
/// span processes with no daemon-to-daemon channel.
///
/// Single-threaded like the rest of the engine: every journal- or
/// state-mutating call carries PAPYRUS_REQUIRES(base::engine_thread) —
/// the daemon's dispatch thread is the engine thread.
class PersistentQueue {
 public:
  /// Opens (creating if needed) the queue stored in `directory`.
  /// Restores checkpoint + journal, re-pends any claimed task
  /// (`recovered()` counts them; exclusive mode only — shared mode
  /// leaves live workers' claims alone), and restores `clock` to the
  /// last persisted virtual time when it is behind it.
  static Result<std::unique_ptr<PersistentQueue>> Open(
      const std::string& directory, ManualClock* clock,
      const obs::Observability& obs = {},
      const QueueOptions& options = {});

  PersistentQueue(const PersistentQueue&) = delete;
  PersistentQueue& operator=(const PersistentQueue&) = delete;

  /// Journals and enqueues a task; returns its queue id.
  Result<int64_t> Enqueue(const std::string& session,
                          const std::string& description)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Claims the next pending task per `policy` under a `lease_micros`
  /// lease held by `owner`. Returns nullopt when nothing is claimable.
  Result<std::optional<QueueTask>> Claim(const std::string& owner,
                                         int64_t lease_micros,
                                         const ClaimPolicy& policy = {})
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Marks a task done. Only the current lease holder may complete it —
  /// a stale owner whose lease was reaped and re-claimed is rejected, so
  /// two daemons can never both think they committed the same task.
  Status Complete(int64_t id, const std::string& owner)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Marks a task permanently failed (attempt budget exhausted).
  Status Fail(int64_t id, const std::string& owner,
              const std::string& reason)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Returns a claimed task to pending before its lease expires (the
  /// execution hit a retryable error). Lease-holder checked like
  /// Complete.
  Status Release(int64_t id, const std::string& owner)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Reaps every lease whose deadline has passed; the tasks go back to
  /// pending. Returns how many were reaped.
  int ExpireLeases() PAPYRUS_REQUIRES(base::engine_thread);

  /// Writes an atomic checkpoint of the full queue state and truncates
  /// the journal. Crash-safe in both orders: the checkpoint lands via
  /// write-rename-fsync first, and replaying the old journal over it is
  /// idempotent.
  Status Checkpoint() PAPYRUS_REQUIRES(base::engine_thread);

  /// Shared mode: replays journal lines other workers appended since
  /// this queue last looked (no-op in exclusive mode, or when nothing
  /// changed). Every mutating call does this implicitly; introspection
  /// callers that want a fresh cross-process view call it explicitly.
  Status Refresh() PAPYRUS_REQUIRES(base::engine_thread);

  // --- introspection ----------------------------------------------------

  /// Tasks not yet done or failed.
  int64_t depth() const;
  int64_t PendingCount() const;
  int64_t ClaimedCount() const;
  int64_t DoneCount() const;
  int64_t FailedCount() const;
  /// Claimed tasks re-pended while reopening after a crash.
  int64_t recovered() const { return recovered_; }

  Result<QueueTask> Get(int64_t id) const;
  /// Snapshot of every task, by id.
  std::vector<QueueTask> Tasks() const;
  /// Every claim this queue instance granted, in grant order.
  const std::vector<ClaimRecord>& claim_log() const { return claim_log_; }

 private:
  PersistentQueue(std::string directory, ManualClock* clock,
                  const obs::Observability& obs,
                  const QueueOptions& options);

  std::string EpochPath() const;
  Status LoadCheckpoint() PAPYRUS_REQUIRES(base::engine_thread);
  /// Replays journal lines from `journal_offset_` to EOF.
  Status ReplayJournalTail() PAPYRUS_REQUIRES(base::engine_thread);
  Status ApplyJournalLine(const std::string& body)
      PAPYRUS_REQUIRES(base::engine_thread);
  Status AppendJournal(const std::string& body)
      PAPYRUS_REQUIRES(base::engine_thread);
  /// Shared mode: flock the queue and fold in other workers' appends.
  /// Returns the lock (null in exclusive mode); holding it spans the
  /// caller's own journal append.
  Result<std::unique_ptr<storage::FileLock>> SyncShared()
      PAPYRUS_REQUIRES(base::engine_thread);
  Status ReloadFromDisk() PAPYRUS_REQUIRES(base::engine_thread);
  /// Picks the session to serve next under weighted round-robin.
  const std::string* PickFairSession(const ClaimPolicy& policy)
      PAPYRUS_REQUIRES(base::engine_thread);
  /// Maintains the per-session pending/claimed indexes around a state
  /// change; call with -1 before mutating `task.state`, +1 after.
  void Index(const QueueTask& task, int delta)
      PAPYRUS_REQUIRES(base::engine_thread);
  void UpdateDepthGauge() PAPYRUS_REQUIRES(base::engine_thread);

  std::string directory_;
  std::string journal_path_;
  std::string checkpoint_path_;
  std::string lock_path_;
  ManualClock* clock_;
  obs::Observability obs_;
  QueueOptions options_;

  std::map<int64_t, QueueTask> tasks_;
  /// session -> pending task ids (claim picks *begin, so id order).
  std::map<std::string, std::set<int64_t>> pending_by_session_;
  /// session -> claimed task count (the fairness in-flight cap input).
  std::map<std::string, int64_t> claimed_by_session_;
  int64_t next_id_ = 1;
  int64_t recovered_ = 0;
  std::ofstream journal_;
  /// Bytes of the journal already folded into memory.
  int64_t journal_offset_ = 0;
  /// Shared mode: checkpoint epoch this queue last synced at.
  int64_t epoch_seen_ = 0;

  /// Weighted-round-robin cursor: the session served last, and how many
  /// more consecutive claims its weight still allows.
  std::string rr_cursor_;
  int rr_credits_ = 0;
  std::vector<ClaimRecord> claim_log_;

  obs::Counter* c_enqueued_ = nullptr;
  obs::Counter* c_claimed_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
  obs::Counter* c_requeued_ = nullptr;
  obs::Counter* c_lease_expired_ = nullptr;
  obs::Counter* c_recovered_ = nullptr;
  obs::Counter* c_checkpoints_ = nullptr;
  obs::Counter* c_fair_rotations_ = nullptr;
  obs::Counter* c_fair_capped_ = nullptr;
  obs::Gauge* g_fair_active_ = nullptr;
  obs::Gauge* g_depth_ = nullptr;
  obs::Histogram* h_wait_ = nullptr;
};

}  // namespace papyrus::server

#endif  // PAPYRUS_SERVER_QUEUE_H_
