#ifndef PAPYRUS_SERVER_QUEUE_H_
#define PAPYRUS_SERVER_QUEUE_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/clock.h"
#include "base/result.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "obs/observability.h"

namespace papyrus::server {

/// Lifecycle of a queued task:
///
///   pending --Claim--> claimed --Complete--> done
///      ^                  |   \--Fail-----> failed
///      |                  |
///      +---Release--------+        (execution error, retry later)
///      +---ExpireLeases---+        (lease deadline passed)
///      +---Open-----------+        (daemon restart: claims are orphaned)
enum class TaskState { kPending, kClaimed, kDone, kFailed };

const char* TaskStateName(TaskState state);

/// One task in the persistent queue.
struct QueueTask {
  int64_t id = 0;
  std::string session;      // target session name
  std::string description;  // encoded wire::TaskDescription, verbatim
  TaskState state = TaskState::kPending;
  /// Claims granted so far (== execution attempts started).
  int attempts = 0;
  int64_t enqueue_micros = 0;
  /// Virtual-time deadline of the current lease (claimed tasks only).
  int64_t lease_deadline_micros = 0;
  /// Claim token of the current (or last) lease holder.
  std::string owner;
  /// Failure reason (failed tasks only).
  std::string failure;
};

/// The crash-surviving task queue behind papyrusd.
///
/// Durability = an append-only journal (`queue.pjq`) replayed over the
/// last atomic checkpoint (`queue.pjc`). Every state transition is
/// journaled *before* it takes effect in memory: a task is on disk from
/// the moment Enqueue returns, and a claim, completion, or failure that
/// was acknowledged survives any later crash. Journal lines carry the
/// same ` !<hex>` FNV-1a line checksums as the v2 snapshot format; replay
/// stops at the first damaged line, recovering the longest valid prefix.
///
/// Leases make dispatch crash-safe without distributed coordination: a
/// claim holds a virtual-time lease, and a lease that expires (or is
/// found dangling when the queue reopens after a crash) returns the task
/// to pending for re-dispatch. Combined with the daemon's applied-task
/// ledger this yields at-least-once execution with exactly-once commit.
///
/// Single-threaded like the rest of the engine: every journal- or
/// state-mutating call carries PAPYRUS_REQUIRES(base::engine_thread) —
/// the daemon's dispatch thread is the engine thread.
class PersistentQueue {
 public:
  /// Opens (creating if needed) the queue stored in `directory`.
  /// Restores checkpoint + journal, re-pends any claimed task
  /// (`recovered()` counts them), and restores `clock` to the last
  /// persisted virtual time when it is behind it.
  static Result<std::unique_ptr<PersistentQueue>> Open(
      const std::string& directory, ManualClock* clock,
      const obs::Observability& obs = {});

  PersistentQueue(const PersistentQueue&) = delete;
  PersistentQueue& operator=(const PersistentQueue&) = delete;

  /// Journals and enqueues a task; returns its queue id.
  Result<int64_t> Enqueue(const std::string& session,
                          const std::string& description)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Claims the lowest-id pending task under a `lease_micros` lease held
  /// by `owner`. Returns nullopt when nothing is pending.
  Result<std::optional<QueueTask>> Claim(const std::string& owner,
                                         int64_t lease_micros)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Marks a task done. Only the current lease holder may complete it —
  /// a stale owner whose lease was reaped and re-claimed is rejected, so
  /// two daemons can never both think they committed the same task.
  Status Complete(int64_t id, const std::string& owner)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Marks a task permanently failed (attempt budget exhausted).
  Status Fail(int64_t id, const std::string& owner,
              const std::string& reason)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Returns a claimed task to pending before its lease expires (the
  /// execution hit a retryable error). Lease-holder checked like
  /// Complete.
  Status Release(int64_t id, const std::string& owner)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Reaps every lease whose deadline has passed; the tasks go back to
  /// pending. Returns how many were reaped.
  int ExpireLeases() PAPYRUS_REQUIRES(base::engine_thread);

  /// Writes an atomic checkpoint of the full queue state and truncates
  /// the journal. Crash-safe in both orders: the checkpoint lands via
  /// write-rename-fsync first, and replaying the old journal over it is
  /// idempotent.
  Status Checkpoint() PAPYRUS_REQUIRES(base::engine_thread);

  // --- introspection ----------------------------------------------------

  /// Tasks not yet done or failed.
  int64_t depth() const;
  int64_t PendingCount() const;
  int64_t ClaimedCount() const;
  int64_t DoneCount() const;
  int64_t FailedCount() const;
  /// Claimed tasks re-pended while reopening after a crash.
  int64_t recovered() const { return recovered_; }

  Result<QueueTask> Get(int64_t id) const;
  /// Snapshot of every task, by id.
  std::vector<QueueTask> Tasks() const;

 private:
  PersistentQueue(std::string directory, ManualClock* clock,
                  const obs::Observability& obs);

  Status LoadCheckpoint() PAPYRUS_REQUIRES(base::engine_thread);
  Status ReplayJournal() PAPYRUS_REQUIRES(base::engine_thread);
  Status ApplyJournalLine(const std::string& body)
      PAPYRUS_REQUIRES(base::engine_thread);
  Status AppendJournal(const std::string& body)
      PAPYRUS_REQUIRES(base::engine_thread);
  void UpdateDepthGauge() PAPYRUS_REQUIRES(base::engine_thread);

  std::string directory_;
  std::string journal_path_;
  std::string checkpoint_path_;
  ManualClock* clock_;
  obs::Observability obs_;

  std::map<int64_t, QueueTask> tasks_;
  int64_t next_id_ = 1;
  int64_t recovered_ = 0;
  std::ofstream journal_;

  obs::Counter* c_enqueued_ = nullptr;
  obs::Counter* c_claimed_ = nullptr;
  obs::Counter* c_completed_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
  obs::Counter* c_requeued_ = nullptr;
  obs::Counter* c_lease_expired_ = nullptr;
  obs::Counter* c_recovered_ = nullptr;
  obs::Counter* c_checkpoints_ = nullptr;
  obs::Gauge* g_depth_ = nullptr;
  obs::Histogram* h_wait_ = nullptr;
};

}  // namespace papyrus::server

#endif  // PAPYRUS_SERVER_QUEUE_H_
