#include "server/queue.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "base/macros.h"
#include "base/thread_annotations.h"
#include "base/strings.h"
#include "storage/atomic_file.h"

namespace papyrus::server {

namespace {

constexpr char kJournalFile[] = "queue.pjq";
constexpr char kCheckpointFile[] = "queue.pjc";
constexpr char kLockFile[] = "queue.lock";
constexpr char kEpochFile[] = "queue.pjg";
constexpr char kCheckpointHeader[] = "papyrus-queue v1";

std::string HexHash(std::string_view body) {
  std::ostringstream out;
  out << std::hex << Fnv1a(body);
  return out.str();
}

/// Appends the ` !<hex>` line checksum the v2 snapshot format uses.
std::string Stamp(const std::string& body) {
  return body + " !" + HexHash(body);
}

/// Validates and strips a line checksum; false on damage.
bool Unstamp(const std::string& line, std::string* body) {
  size_t mark = line.rfind(" !");
  if (mark == std::string::npos) return false;
  *body = line.substr(0, mark);
  return HexHash(*body) == line.substr(mark + 2);
}

/// String fields ride as `~<percent-encoded>` so an empty value still
/// occupies a whitespace-delimited token (bare `~`), same as the v2
/// snapshot format.
std::string EncField(const std::string& s) {
  return "~" + PercentEncode(s);
}

std::string DecField(const std::string& token) {
  if (!token.empty() && token[0] == '~') {
    return PercentDecode(token.substr(1));
  }
  return PercentDecode(token);
}

const char* StateCode(TaskState s) {
  switch (s) {
    case TaskState::kPending:
      return "p";
    case TaskState::kClaimed:
      return "c";
    case TaskState::kDone:
      return "d";
    case TaskState::kFailed:
      return "f";
  }
  return "?";
}

bool ParseStateCode(const std::string& code, TaskState* out) {
  if (code == "p") *out = TaskState::kPending;
  else if (code == "c") *out = TaskState::kClaimed;
  else if (code == "d") *out = TaskState::kDone;
  else if (code == "f") *out = TaskState::kFailed;
  else return false;
  return true;
}

/// The checkpoint epoch: bumped (atomically, under the queue lock) every
/// time a checkpoint truncates the journal. Shared-mode workers compare
/// it against the epoch they last synced at — a mismatch means their
/// journal byte offset refers to a journal that no longer exists, so
/// they rebuild from the checkpoint instead of tail-replaying.
int64_t ReadEpochFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  int64_t epoch = 0;
  if (in) in >> epoch;
  return epoch;
}

}  // namespace

const char* TaskStateName(TaskState state) {
  switch (state) {
    case TaskState::kPending:
      return "pending";
    case TaskState::kClaimed:
      return "claimed";
    case TaskState::kDone:
      return "done";
    case TaskState::kFailed:
      return "failed";
  }
  return "unknown";
}

PersistentQueue::PersistentQueue(std::string directory, ManualClock* clock,
                                 const obs::Observability& obs,
                                 const QueueOptions& options)
    : directory_(std::move(directory)),
      journal_path_(
          (std::filesystem::path(directory_) / kJournalFile).string()),
      checkpoint_path_(
          (std::filesystem::path(directory_) / kCheckpointFile).string()),
      lock_path_((std::filesystem::path(directory_) / kLockFile).string()),
      clock_(clock),
      obs_(obs),
      options_(options) {
  if (obs_.metrics != nullptr) {
    c_enqueued_ = obs_.metrics->FindOrCreateCounter(obs::kQueueEnqueued);
    c_claimed_ = obs_.metrics->FindOrCreateCounter(obs::kQueueClaimed);
    c_completed_ =
        obs_.metrics->FindOrCreateCounter(obs::kQueueCompleted);
    c_failed_ = obs_.metrics->FindOrCreateCounter(obs::kQueueFailed);
    c_requeued_ = obs_.metrics->FindOrCreateCounter(obs::kQueueRequeued);
    c_lease_expired_ =
        obs_.metrics->FindOrCreateCounter(obs::kQueueLeaseExpired);
    c_recovered_ =
        obs_.metrics->FindOrCreateCounter(obs::kQueueRecovered);
    c_checkpoints_ =
        obs_.metrics->FindOrCreateCounter(obs::kQueueCheckpoints);
    c_fair_rotations_ =
        obs_.metrics->FindOrCreateCounter(obs::kQueueFairnessRotations);
    c_fair_capped_ =
        obs_.metrics->FindOrCreateCounter(obs::kQueueFairnessCapped);
    g_fair_active_ = obs_.metrics->FindOrCreateGauge(
        obs::kQueueFairnessActiveSessions);
    g_depth_ = obs_.metrics->FindOrCreateGauge(obs::kQueueDepth);
    h_wait_ = obs_.metrics->FindOrCreateHistogram(
        obs::kQueueWaitLatency, obs::LatencyBucketBounds());
  }
}

Result<std::unique_ptr<PersistentQueue>> PersistentQueue::Open(
    const std::string& directory, ManualClock* clock,
    const obs::Observability& obs, const QueueOptions& options) {
  base::AssertEngineThread("PersistentQueue::Open");
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create queue directory " + directory +
                            ": " + ec.message());
  }
  std::unique_ptr<PersistentQueue> queue(
      new PersistentQueue(directory, clock, obs, options));
  if (options.shared) {
    // Serialize the initial load against live workers; their claims are
    // real leases, not orphans, so nothing is re-pended here. A worker
    // that died mid-claim is reaped later by lease expiry.
    PAPYRUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileLock> lock,
                             storage::FileLock::Acquire(queue->lock_path_));
    queue->epoch_seen_ = ReadEpochFile(queue->EpochPath());
    PAPYRUS_RETURN_IF_ERROR(queue->LoadCheckpoint());
    PAPYRUS_RETURN_IF_ERROR(queue->ReplayJournalTail());
    queue->UpdateDepthGauge();
    return queue;
  }
  PAPYRUS_RETURN_IF_ERROR(queue->LoadCheckpoint());
  PAPYRUS_RETURN_IF_ERROR(queue->ReplayJournalTail());
  // Recovery invariant: a claim that was never resolved belongs to a
  // dead incarnation. Its lease holder cannot come back (owners are
  // per-incarnation tokens), so the task returns to pending for
  // re-dispatch. The daemon's applied-task ledger dedupes the re-run if
  // the previous incarnation crashed after the commit landed.
  for (auto& [id, task] : queue->tasks_) {
    if (task.state == TaskState::kClaimed) {
      queue->Index(task, -1);
      task.state = TaskState::kPending;
      task.lease_deadline_micros = 0;
      queue->Index(task, +1);
      ++queue->recovered_;
      if (queue->c_recovered_ != nullptr) queue->c_recovered_->Increment();
    }
  }
  queue->journal_.open(queue->journal_path_,
                       std::ios::app | std::ios::binary);
  if (!queue->journal_) {
    return Status::Internal("cannot open journal " + queue->journal_path_);
  }
  queue->UpdateDepthGauge();
  return queue;
}

std::string PersistentQueue::EpochPath() const {
  return (std::filesystem::path(directory_) / kEpochFile).string();
}

Status PersistentQueue::LoadCheckpoint() {
  std::ifstream in(checkpoint_path_, std::ios::binary);
  if (!in) return Status::OK();  // fresh queue
  std::string line;
  if (!std::getline(in, line) || line != kCheckpointHeader) {
    return Status::Internal("bad queue checkpoint header in " +
                            checkpoint_path_);
  }
  while (std::getline(in, line)) {
    std::string body;
    if (!Unstamp(line, &body)) break;  // damaged tail: keep the prefix
    std::vector<std::string> f = SplitWhitespace(body);
    if (f.empty()) continue;
    if (f[0] == "now" && f.size() == 2) {
      int64_t now = 0;
      if (ParseInt64(f[1], &now) && clock_->NowMicros() < now) {
        clock_->SetMicros(now);
      }
    } else if (f[0] == "next" && f.size() == 2) {
      int64_t next = 0;
      if (ParseInt64(f[1], &next)) next_id_ = std::max(next_id_, next);
    } else if (f[0] == "t" && f.size() == 10) {
      QueueTask task;
      int64_t attempts = 0;
      if (!ParseInt64(f[1], &task.id) || !ParseStateCode(f[2], &task.state) ||
          !ParseInt64(f[3], &attempts) ||
          !ParseInt64(f[4], &task.enqueue_micros) ||
          !ParseInt64(f[5], &task.lease_deadline_micros)) {
        continue;
      }
      task.attempts = static_cast<int>(attempts);
      task.session = DecField(f[6]);
      task.owner = DecField(f[7]);
      task.description = DecField(f[8]);
      task.failure = DecField(f[9]);
      next_id_ = std::max(next_id_, task.id + 1);
      auto [it, inserted] = tasks_.insert_or_assign(task.id, std::move(task));
      if (inserted) Index(it->second, +1);
    }
  }
  return Status::OK();
}

Status PersistentQueue::ReplayJournalTail() {
  std::ifstream in(journal_path_, std::ios::binary);
  if (!in) return Status::OK();
  if (journal_offset_ > 0) in.seekg(journal_offset_);
  std::string line;
  while (std::getline(in, line)) {
    std::string body;
    // A torn or corrupted line ends the valid prefix; everything after
    // it never durably happened.
    if (!Unstamp(line, &body)) break;
    PAPYRUS_RETURN_IF_ERROR(ApplyJournalLine(body));
    journal_offset_ += static_cast<int64_t>(line.size()) + 1;
  }
  return Status::OK();
}

Status PersistentQueue::ApplyJournalLine(const std::string& body) {
  std::vector<std::string> f = SplitWhitespace(body);
  if (f.empty()) return Status::OK();
  int64_t id = 0;
  if (f.size() < 2 || !ParseInt64(f[1], &id)) return Status::OK();
  if (f[0] == "e" && f.size() == 5) {
    // Replay over a newer checkpoint can re-see an enqueue; the
    // checkpointed task wins.
    next_id_ = std::max(next_id_, id + 1);
    if (tasks_.count(id) != 0) return Status::OK();
    QueueTask task;
    task.id = id;
    if (!ParseInt64(f[2], &task.enqueue_micros)) return Status::OK();
    task.session = DecField(f[3]);
    task.description = DecField(f[4]);
    auto [it, inserted] = tasks_.emplace(id, std::move(task));
    if (inserted) Index(it->second, +1);
    return Status::OK();
  }
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Status::OK();
  QueueTask& task = it->second;
  // Terminal states never regress, whatever a stale journal says.
  if (task.state == TaskState::kDone || task.state == TaskState::kFailed) {
    return Status::OK();
  }
  if (f[0] == "c" && f.size() == 5) {
    int64_t attempt = 0;
    int64_t deadline = 0;
    if (!ParseInt64(f[2], &attempt) || !ParseInt64(f[3], &deadline)) {
      return Status::OK();
    }
    Index(task, -1);
    task.state = TaskState::kClaimed;
    task.attempts = static_cast<int>(attempt);
    task.lease_deadline_micros = deadline;
    task.owner = DecField(f[4]);
    Index(task, +1);
  } else if (f[0] == "r" || f[0] == "x") {
    Index(task, -1);
    task.state = TaskState::kPending;
    task.lease_deadline_micros = 0;
    Index(task, +1);
  } else if (f[0] == "d") {
    Index(task, -1);
    task.state = TaskState::kDone;
  } else if (f[0] == "f" && f.size() >= 3) {
    Index(task, -1);
    task.state = TaskState::kFailed;
    task.failure = DecField(f[2]);
  }
  return Status::OK();
}

Status PersistentQueue::AppendJournal(const std::string& body) {
  std::string line = Stamp(body);
  if (options_.shared) {
    // Shared mode appends through a fresh stream each time: a sibling's
    // checkpoint swaps the journal inode, and a held-open stream would
    // keep writing to the orphaned file. Callers hold the queue flock
    // across SyncShared() + this append, so O_APPEND lands the line at a
    // stable EOF and the offset stays exact.
    std::ofstream out(journal_path_, std::ios::app | std::ios::binary);
    out << line << '\n';
    out.flush();
    if (!out) {
      return Status::Internal("cannot append to journal " + journal_path_);
    }
    journal_offset_ += static_cast<int64_t>(line.size()) + 1;
    return Status::OK();
  }
  journal_ << line << '\n';
  journal_.flush();
  if (!journal_) {
    return Status::Internal("cannot append to journal " + journal_path_);
  }
  journal_offset_ += static_cast<int64_t>(line.size()) + 1;
  return Status::OK();
}

Result<std::unique_ptr<storage::FileLock>> PersistentQueue::SyncShared() {
  if (!options_.shared) return std::unique_ptr<storage::FileLock>();
  PAPYRUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileLock> lock,
                           storage::FileLock::Acquire(lock_path_));
  int64_t epoch = ReadEpochFile(EpochPath());
  if (epoch != epoch_seen_) {
    PAPYRUS_RETURN_IF_ERROR(ReloadFromDisk());
    epoch_seen_ = epoch;
  } else {
    PAPYRUS_RETURN_IF_ERROR(ReplayJournalTail());
  }
  UpdateDepthGauge();
  return lock;
}

Status PersistentQueue::ReloadFromDisk() {
  tasks_.clear();
  pending_by_session_.clear();
  claimed_by_session_.clear();
  next_id_ = 1;
  journal_offset_ = 0;
  PAPYRUS_RETURN_IF_ERROR(LoadCheckpoint());
  return ReplayJournalTail();
}

Status PersistentQueue::Refresh() {
  PAPYRUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileLock> lock,
                           SyncShared());
  (void)lock;
  return Status::OK();
}

void PersistentQueue::Index(const QueueTask& task, int delta) {
  if (task.state == TaskState::kPending) {
    if (delta > 0) {
      pending_by_session_[task.session].insert(task.id);
    } else {
      auto it = pending_by_session_.find(task.session);
      if (it != pending_by_session_.end()) {
        it->second.erase(task.id);
        if (it->second.empty()) pending_by_session_.erase(it);
      }
    }
  } else if (task.state == TaskState::kClaimed) {
    int64_t& n = claimed_by_session_[task.session];
    n += delta;
    if (n <= 0) claimed_by_session_.erase(task.session);
  }
}

Result<int64_t> PersistentQueue::Enqueue(const std::string& session,
                                         const std::string& description) {
  PAPYRUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileLock> lock,
                           SyncShared());
  (void)lock;
  int64_t id = next_id_;
  std::ostringstream body;
  body << "e " << id << ' ' << clock_->NowMicros() << ' '
       << EncField(session) << ' ' << EncField(description);
  // Journal first: the task exists once this line is on disk, and only
  // then. A crash right after Enqueue returns cannot lose it.
  PAPYRUS_RETURN_IF_ERROR(AppendJournal(body.str()));
  next_id_ = id + 1;
  QueueTask task;
  task.id = id;
  task.session = session;
  task.description = description;
  task.enqueue_micros = clock_->NowMicros();
  auto [it, inserted] = tasks_.emplace(id, std::move(task));
  if (inserted) Index(it->second, +1);
  if (c_enqueued_ != nullptr) c_enqueued_->Increment();
  UpdateDepthGauge();
  return id;
}

const std::string* PersistentQueue::PickFairSession(
    const ClaimPolicy& policy) {
  auto eligible = [&](const std::string& session,
                      const std::set<int64_t>& ids) {
    if (ids.empty()) return false;
    if (policy.max_inflight_per_session > 0) {
      auto it = claimed_by_session_.find(session);
      if (it != claimed_by_session_.end() &&
          it->second >= policy.max_inflight_per_session) {
        if (c_fair_capped_ != nullptr) c_fair_capped_->Increment();
        return false;
      }
    }
    if (policy.session_filter && !policy.session_filter(session)) {
      return false;
    }
    return true;
  };
  if (g_fair_active_ != nullptr) {
    g_fair_active_->Set(static_cast<int64_t>(pending_by_session_.size()));
  }
  // Keep serving the cursor's session while its weight has credits left.
  if (rr_credits_ > 0) {
    auto it = pending_by_session_.find(rr_cursor_);
    if (it != pending_by_session_.end() && eligible(it->first, it->second)) {
      --rr_credits_;
      return &it->first;
    }
    rr_credits_ = 0;  // drained or blocked: rotate away
  }
  // Rotate: the first eligible session strictly after the cursor, in key
  // order, wrapping around — every session with pending work is visited
  // before the cursor's session comes up again.
  auto it = pending_by_session_.upper_bound(rr_cursor_);
  for (size_t seen = 0, total = pending_by_session_.size(); seen < total;
       ++seen, ++it) {
    if (it == pending_by_session_.end()) it = pending_by_session_.begin();
    if (!eligible(it->first, it->second)) continue;
    rr_cursor_ = it->first;
    int weight = 1;
    if (policy.weights != nullptr) {
      auto w = policy.weights->find(rr_cursor_);
      if (w != policy.weights->end() && w->second > 1) weight = w->second;
    }
    rr_credits_ = weight - 1;
    if (c_fair_rotations_ != nullptr) c_fair_rotations_->Increment();
    return &it->first;
  }
  return nullptr;
}

Result<std::optional<QueueTask>> PersistentQueue::Claim(
    const std::string& owner, int64_t lease_micros,
    const ClaimPolicy& policy) {
  PAPYRUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileLock> lock,
                           SyncShared());
  (void)lock;
  QueueTask* picked = nullptr;
  if (policy.fair) {
    const std::string* session = PickFairSession(policy);
    if (session != nullptr) {
      int64_t id = *pending_by_session_.find(*session)->second.begin();
      picked = &tasks_.find(id)->second;
    }
  } else {
    // Global FIFO: lowest pending id, subject to filter and cap.
    for (auto& [id, task] : tasks_) {
      if (task.state != TaskState::kPending) continue;
      if (policy.max_inflight_per_session > 0) {
        auto it = claimed_by_session_.find(task.session);
        if (it != claimed_by_session_.end() &&
            it->second >= policy.max_inflight_per_session) {
          continue;
        }
      }
      if (policy.session_filter && !policy.session_filter(task.session)) {
        continue;
      }
      picked = &task;
      break;
    }
  }
  if (picked == nullptr) return std::optional<QueueTask>();
  QueueTask& task = *picked;
  int64_t deadline = clock_->NowMicros() + lease_micros;
  std::ostringstream body;
  body << "c " << task.id << ' ' << (task.attempts + 1) << ' ' << deadline
       << ' ' << EncField(owner);
  PAPYRUS_RETURN_IF_ERROR(AppendJournal(body.str()));
  Index(task, -1);
  task.state = TaskState::kClaimed;
  ++task.attempts;
  task.lease_deadline_micros = deadline;
  task.owner = owner;
  Index(task, +1);
  claim_log_.push_back({task.id, task.session});
  if (c_claimed_ != nullptr) c_claimed_->Increment();
  return std::optional<QueueTask>(task);
}

Status PersistentQueue::Complete(int64_t id, const std::string& owner) {
  PAPYRUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileLock> lock,
                           SyncShared());
  (void)lock;
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("no queued task " + std::to_string(id));
  }
  QueueTask& task = it->second;
  if (task.state != TaskState::kClaimed) {
    return Status::FailedPrecondition(
        "task " + std::to_string(id) + " is " + TaskStateName(task.state) +
        ", not claimed");
  }
  if (task.owner != owner) {
    return Status::PermissionDenied(
        "task " + std::to_string(id) + " is leased to \"" + task.owner +
        "\", not \"" + owner + "\"");
  }
  std::ostringstream body;
  body << "d " << id << ' ' << clock_->NowMicros();
  PAPYRUS_RETURN_IF_ERROR(AppendJournal(body.str()));
  Index(task, -1);
  task.state = TaskState::kDone;
  if (c_completed_ != nullptr) c_completed_->Increment();
  if (h_wait_ != nullptr) {
    h_wait_->Observe(clock_->NowMicros() - task.enqueue_micros);
  }
  UpdateDepthGauge();
  return Status::OK();
}

Status PersistentQueue::Fail(int64_t id, const std::string& owner,
                             const std::string& reason) {
  PAPYRUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileLock> lock,
                           SyncShared());
  (void)lock;
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("no queued task " + std::to_string(id));
  }
  QueueTask& task = it->second;
  if (task.state != TaskState::kClaimed || task.owner != owner) {
    return Status::FailedPrecondition(
        "task " + std::to_string(id) + " is not leased to \"" + owner +
        "\"");
  }
  std::ostringstream body;
  body << "f " << id << ' ' << EncField(reason);
  PAPYRUS_RETURN_IF_ERROR(AppendJournal(body.str()));
  Index(task, -1);
  task.state = TaskState::kFailed;
  task.failure = reason;
  if (c_failed_ != nullptr) c_failed_->Increment();
  UpdateDepthGauge();
  return Status::OK();
}

Status PersistentQueue::Release(int64_t id, const std::string& owner) {
  PAPYRUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileLock> lock,
                           SyncShared());
  (void)lock;
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("no queued task " + std::to_string(id));
  }
  QueueTask& task = it->second;
  if (task.state != TaskState::kClaimed || task.owner != owner) {
    return Status::FailedPrecondition(
        "task " + std::to_string(id) + " is not leased to \"" + owner +
        "\"");
  }
  std::ostringstream body;
  body << "r " << id;
  PAPYRUS_RETURN_IF_ERROR(AppendJournal(body.str()));
  Index(task, -1);
  task.state = TaskState::kPending;
  task.lease_deadline_micros = 0;
  Index(task, +1);
  if (c_requeued_ != nullptr) c_requeued_->Increment();
  return Status::OK();
}

int PersistentQueue::ExpireLeases() {
  Result<std::unique_ptr<storage::FileLock>> lock = SyncShared();
  if (!lock.ok()) return 0;
  int reaped = 0;
  int64_t now = clock_->NowMicros();
  for (auto& [id, task] : tasks_) {
    if (task.state != TaskState::kClaimed ||
        task.lease_deadline_micros > now) {
      continue;
    }
    std::ostringstream body;
    body << "x " << id;
    if (!AppendJournal(body.str()).ok()) continue;
    Index(task, -1);
    task.state = TaskState::kPending;
    task.lease_deadline_micros = 0;
    Index(task, +1);
    ++reaped;
    if (c_lease_expired_ != nullptr) c_lease_expired_->Increment();
  }
  return reaped;
}

Status PersistentQueue::Checkpoint() {
  PAPYRUS_ASSIGN_OR_RETURN(std::unique_ptr<storage::FileLock> lock,
                           SyncShared());
  (void)lock;
  std::ostringstream out;
  out << kCheckpointHeader << '\n';
  {
    std::ostringstream body;
    body << "now " << clock_->NowMicros();
    out << Stamp(body.str()) << '\n';
  }
  {
    std::ostringstream body;
    body << "next " << next_id_;
    out << Stamp(body.str()) << '\n';
  }
  for (const auto& [id, task] : tasks_) {
    std::ostringstream body;
    body << "t " << id << ' ' << StateCode(task.state) << ' '
         << task.attempts << ' ' << task.enqueue_micros << ' '
         << task.lease_deadline_micros << ' '
         << EncField(task.session) << ' ' << EncField(task.owner)
         << ' ' << EncField(task.description) << ' '
         << EncField(task.failure);
    out << Stamp(body.str()) << '\n';
  }
  // Checkpoint lands atomically first; only then is the journal
  // truncated. A crash in between replays the stale journal over the new
  // checkpoint, which is idempotent by construction.
  PAPYRUS_RETURN_IF_ERROR(
      storage::AtomicWriteFile(checkpoint_path_, out.str()));
  if (options_.shared) {
    // Bump the epoch before swapping the journal so siblings whose byte
    // offsets point into the old inode rebuild from the checkpoint. A
    // crash in between leaves the old journal in place, which replays
    // idempotently over the new checkpoint either way.
    PAPYRUS_RETURN_IF_ERROR(storage::AtomicWriteFile(
        EpochPath(), std::to_string(epoch_seen_ + 1) + "\n"));
    epoch_seen_ += 1;
    PAPYRUS_RETURN_IF_ERROR(storage::AtomicWriteFile(journal_path_, ""));
    journal_offset_ = 0;
    if (c_checkpoints_ != nullptr) c_checkpoints_->Increment();
    return Status::OK();
  }
  journal_.close();
  PAPYRUS_RETURN_IF_ERROR(storage::AtomicWriteFile(journal_path_, ""));
  journal_offset_ = 0;
  journal_.open(journal_path_, std::ios::app | std::ios::binary);
  if (!journal_) {
    return Status::Internal("cannot reopen journal " + journal_path_);
  }
  if (c_checkpoints_ != nullptr) c_checkpoints_->Increment();
  return Status::OK();
}

int64_t PersistentQueue::depth() const {
  return PendingCount() + ClaimedCount();
}

int64_t PersistentQueue::PendingCount() const {
  int64_t n = 0;
  for (const auto& [id, t] : tasks_) {
    if (t.state == TaskState::kPending) ++n;
  }
  return n;
}

int64_t PersistentQueue::ClaimedCount() const {
  int64_t n = 0;
  for (const auto& [id, t] : tasks_) {
    if (t.state == TaskState::kClaimed) ++n;
  }
  return n;
}

int64_t PersistentQueue::DoneCount() const {
  int64_t n = 0;
  for (const auto& [id, t] : tasks_) {
    if (t.state == TaskState::kDone) ++n;
  }
  return n;
}

int64_t PersistentQueue::FailedCount() const {
  int64_t n = 0;
  for (const auto& [id, t] : tasks_) {
    if (t.state == TaskState::kFailed) ++n;
  }
  return n;
}

Result<QueueTask> PersistentQueue::Get(int64_t id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return Status::NotFound("no queued task " + std::to_string(id));
  }
  return it->second;
}

std::vector<QueueTask> PersistentQueue::Tasks() const {
  std::vector<QueueTask> out;
  out.reserve(tasks_.size());
  for (const auto& [id, t] : tasks_) out.push_back(t);
  return out;
}

void PersistentQueue::UpdateDepthGauge() {
  if (g_depth_ != nullptr) g_depth_->Set(depth());
}

}  // namespace papyrus::server
