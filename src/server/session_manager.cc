#include "server/session_manager.h"

#include <algorithm>
#include <sstream>
#include <tuple>
#include <vector>

#include "base/macros.h"
#include "base/thread_annotations.h"
#include "base/strings.h"

namespace papyrus::server {

namespace {

constexpr char kStateHeader[] = "papyrus-session-state v1";
constexpr char kLegacyStateFile[] = "state.pss";

}  // namespace

ManagedSession::ManagedSession(std::string directory, std::string name)
    : directory_(std::move(directory)), name_(std::move(name)) {}

Result<std::unique_ptr<ManagedSession>> ManagedSession::Open(
    const std::string& directory, const std::string& name,
    const SessionConfig& config, const obs::Observability& obs,
    storage::ContentStore* shared_store) {
  base::AssertEngineThread("ManagedSession::Open");
  std::unique_ptr<ManagedSession> managed(
      new ManagedSession(directory, name));
  managed->snapshot_interval_ = config.snapshot_interval;

  SessionOptions options;
  options.num_workstations = config.num_workstations;
  options.worker_threads = config.worker_threads;
  options.cache_interval = config.cache_interval;
  managed->session_ = std::make_unique<Papyrus>(options);
  // Rebind the session's instrumented subsystems to the daemon's sinks
  // so one registry and one trace span every session and incarnation.
  if (obs.trace != nullptr || obs.metrics != nullptr) {
    managed->session_->database().set_observability(obs);
    managed->session_->network().set_observability(obs);
    managed->session_->task_manager().set_observability(obs);
    managed->session_->step_cache().set_observability(obs);
  }
  if (shared_store != nullptr) {
    // Deferred publication: entries recorded during execution are held
    // until Save() makes the commit durable (FlushSharedPublications),
    // so the store only ever holds outputs of durably committed tasks.
    managed->session_->AttachSharedStore(shared_store,
                                         /*auto_publish=*/false);
  }

  // The daemon state (clock, execution ids, applied ledger) rides the
  // session's WAL commits and snapshot generations; hooks must be in
  // place before OpenStorage so recovery can replay it.
  ManagedSession* raw = managed.get();
  Papyrus::StateHooks hooks;
  hooks.drain = [raw] { return raw->DrainStateJournal(); };
  hooks.section = [raw] { return raw->SerializeState(); };
  hooks.replay = [raw](const std::string& body) {
    return raw->ApplyStateLine(SplitWhitespace(body));
  };
  hooks.restore = [raw](const std::string& text) {
    return raw->RestoreState(text);
  };
  hooks.legacy_file = kLegacyStateFile;
  managed->session_->set_state_hooks(std::move(hooks));

  PAPYRUS_RETURN_IF_ERROR(managed->session_->OpenStorage(directory));
  managed->generation_ =
      static_cast<int64_t>(managed->session_->store()->generation());
  // The restored state is durable by definition: start journal tracking
  // from it, and flush publications the crashed incarnation held back
  // (idempotent — whatever its missing flush would have published).
  managed->journaled_clock_ = managed->session_->clock().NowMicros();
  managed->journaled_nextexec_ =
      managed->session_->task_manager().next_execution_id();
  managed->pending_applied_.clear();
  managed->session_->step_cache().FlushSharedPublications();
  PAPYRUS_RETURN_IF_ERROR(managed->ReplayMetadata());

  // Intra-session chaos lands after restore so crash times are relative
  // to the restored virtual clock.
  if (config.fault.seed != 0) {
    managed->fault_plan_ =
        std::make_unique<fault::FaultPlan>(config.fault);
    if (obs.trace != nullptr || obs.metrics != nullptr) {
      managed->fault_plan_->set_observability(obs);
    } else {
      managed->fault_plan_->set_observability(
          managed->session_->observability());
    }
    PAPYRUS_RETURN_IF_ERROR(managed->fault_plan_->Apply(
        &managed->session_->network(), &managed->session_->tools()));
  }
  return managed;
}

Status ManagedSession::ApplyStateLine(
    const std::vector<std::string>& f) {
  if (f.empty()) return Status::OK();
  if (f[0] == "clock" && f.size() == 2) {
    int64_t micros = 0;
    if (!ParseInt64(f[1], &micros)) {
      return Status::Internal("bad clock line in session state");
    }
    // The restored history's timestamps end here; new work must
    // continue from the same virtual instant for byte-identity.
    session_->clock().SetMicros(micros);
    return Status::OK();
  }
  if (f[0] == "nextexec" && f.size() == 2) {
    int64_t next = 0;
    if (!ParseInt64(f[1], &next)) {
      return Status::Internal("bad nextexec line in session state");
    }
    session_->task_manager().set_next_execution_id(
        static_cast<int>(next));
    return Status::OK();
  }
  if (f[0] == "applied" && f.size() == 4) {
    int64_t task_id = 0;
    int64_t thread_id = 0;
    int64_t node_id = 0;
    if (!ParseInt64(f[1], &task_id) || !ParseInt64(f[2], &thread_id) ||
        !ParseInt64(f[3], &node_id)) {
      return Status::Internal("bad applied line in session state");
    }
    applied_[task_id] = {static_cast<int>(thread_id),
                         static_cast<activity::NodeId>(node_id)};
    return Status::OK();
  }
  // Unknown state lines are skipped for forward compatibility.
  return Status::OK();
}

Status ManagedSession::RestoreState(const std::string& state_text) {
  std::istringstream in(state_text);
  std::string line;
  if (!std::getline(in, line) || line != kStateHeader) {
    return Status::Internal("bad session state header for " + name_);
  }
  while (std::getline(in, line)) {
    PAPYRUS_RETURN_IF_ERROR(ApplyStateLine(SplitWhitespace(line)));
  }
  return Status::OK();
}

std::string ManagedSession::SerializeState() const {
  std::ostringstream out;
  out << kStateHeader << '\n';
  out << "clock " << session_->clock().NowMicros() << '\n';
  out << "nextexec " << session_->task_manager().next_execution_id()
      << '\n';
  for (const auto& [task_id, where] : applied_) {
    out << "applied " << task_id << ' ' << where.first << ' '
        << where.second << '\n';
  }
  return out.str();
}

std::vector<std::string> ManagedSession::DrainStateJournal() {
  std::vector<std::string> bodies;
  const int64_t clock_now = session_->clock().NowMicros();
  if (clock_now != journaled_clock_) {
    bodies.push_back("clock " + std::to_string(clock_now));
    journaled_clock_ = clock_now;
  }
  const int next_exec = session_->task_manager().next_execution_id();
  if (next_exec != journaled_nextexec_) {
    bodies.push_back("nextexec " + std::to_string(next_exec));
    journaled_nextexec_ = next_exec;
  }
  for (int64_t task_id : pending_applied_) {
    auto it = applied_.find(task_id);
    if (it == applied_.end()) continue;
    bodies.push_back("applied " + std::to_string(task_id) + " " +
                     std::to_string(it->second.first) + " " +
                     std::to_string(it->second.second));
  }
  pending_applied_.clear();
  return bodies;
}

Status ManagedSession::ReplayMetadata() {
  // Metadata inference state is not persisted; re-observe every restored
  // record in commit order (commit timestamps strictly increase under
  // the serial daemon, so the order is the live observation order).
  struct Entry {
    int64_t micros;
    int thread_id;
    activity::NodeId node_id;
    const task::TaskHistoryRecord* record;
  };
  std::vector<Entry> entries;
  for (int thread_id : session_->activity().ThreadIds()) {
    auto thread = session_->activity().GetThread(thread_id);
    if (!thread.ok()) continue;
    for (const auto& [node_id, node] : (*thread)->nodes()) {
      if (node.is_junction || node.record.task_name.empty()) continue;
      entries.push_back(
          {node.appended_micros, thread_id, node_id, &node.record});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::tie(a.micros, a.thread_id, a.node_id) <
                     std::tie(b.micros, b.thread_id, b.node_id);
            });
  for (const Entry& e : entries) {
    PAPYRUS_RETURN_IF_ERROR(session_->metadata().Observe(*e.record));
  }
  return Status::OK();
}

Result<activity::NodeId> ManagedSession::AppliedNode(
    int64_t task_id) const {
  auto it = applied_.find(task_id);
  if (it == applied_.end()) {
    return Status::NotFound("task " + std::to_string(task_id) +
                            " not applied in session " + name_);
  }
  return it->second.second;
}

Result<int> ManagedSession::ThreadByName(const std::string& thread_name) {
  for (int id : session_->activity().ThreadIds()) {
    auto thread = session_->activity().GetThread(id);
    if (thread.ok() && (*thread)->name() == thread_name) return id;
  }
  return session_->CreateThread(thread_name);
}

Result<activity::NodeId> ManagedSession::Execute(
    int64_t task_id, const TaskDescription& desc) {
  PAPYRUS_ASSIGN_OR_RETURN(int thread_id, ThreadByName(desc.thread));
  activity::ActivityInvocation inv;
  inv.template_name = desc.template_name;
  inv.input_refs = desc.input_refs;
  inv.output_names = desc.output_names;
  inv.option_overrides = desc.option_overrides;
  inv.seed = desc.seed;
  PAPYRUS_ASSIGN_OR_RETURN(
      activity::NodeId node,
      session_->activity().InvokeTask(thread_id, inv));
  applied_[task_id] = {thread_id, node};
  pending_applied_.push_back(task_id);
  return node;
}

Status ManagedSession::Save() {
  ++saves_since_generation_;
  if (snapshot_interval_ <= 1 ||
      saves_since_generation_ >= snapshot_interval_) {
    PAPYRUS_RETURN_IF_ERROR(session_->SaveGeneration());
    saves_since_generation_ = 0;
  } else {
    // The cheap path that replaces one whole-snapshot rewrite per task:
    // journal the commit's mutations and fsync once.
    PAPYRUS_RETURN_IF_ERROR(session_->CommitWal());
  }
  generation_ = static_cast<int64_t>(session_->store()->generation());
  // The commit is durable (journal-before-effect); derivations it
  // carries may now be shared with other sessions through the
  // content-addressed store.
  session_->step_cache().FlushSharedPublications();
  return Status::OK();
}

Status ManagedSession::Checkpoint() {
  PAPYRUS_RETURN_IF_ERROR(session_->SaveGeneration());
  saves_since_generation_ = 0;
  generation_ = static_cast<int64_t>(session_->store()->generation());
  session_->step_cache().FlushSharedPublications();
  return Status::OK();
}

}  // namespace papyrus::server
