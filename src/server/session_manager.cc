#include "server/session_manager.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>
#include <vector>

#include "base/macros.h"
#include "base/thread_annotations.h"
#include "base/strings.h"
#include "storage/atomic_file.h"

namespace papyrus::server {

namespace {

constexpr char kCurrentFile[] = "CURRENT";
constexpr char kStateFile[] = "state.pss";
constexpr char kStateHeader[] = "papyrus-session-state v1";
constexpr char kSnapshotPrefix[] = "snap.";

Result<std::string> ReadFileText(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot read " + path.string());
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

ManagedSession::ManagedSession(std::string directory, std::string name)
    : directory_(std::move(directory)), name_(std::move(name)) {}

Result<std::unique_ptr<ManagedSession>> ManagedSession::Open(
    const std::string& directory, const std::string& name,
    const SessionConfig& config, const obs::Observability& obs,
    storage::ContentStore* shared_store) {
  base::AssertEngineThread("ManagedSession::Open");
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::Internal("cannot create session directory " +
                            directory + ": " + ec.message());
  }
  std::unique_ptr<ManagedSession> managed(
      new ManagedSession(directory, name));

  SessionOptions options;
  options.num_workstations = config.num_workstations;
  options.worker_threads = config.worker_threads;
  options.cache_interval = config.cache_interval;
  managed->session_ = std::make_unique<Papyrus>(options);
  // Rebind the session's instrumented subsystems to the daemon's sinks
  // so one registry and one trace span every session and incarnation.
  if (obs.trace != nullptr || obs.metrics != nullptr) {
    managed->session_->database().set_observability(obs);
    managed->session_->network().set_observability(obs);
    managed->session_->task_manager().set_observability(obs);
    managed->session_->step_cache().set_observability(obs);
  }
  if (shared_store != nullptr) {
    // Deferred publication: entries recorded during execution are held
    // until Save() swaps CURRENT (FlushSharedPublications below), so the
    // store only ever holds outputs of durably committed tasks.
    managed->session_->AttachSharedStore(shared_store,
                                         /*auto_publish=*/false);
  }

  auto current = ReadFileText(
      std::filesystem::path(directory) / kCurrentFile);
  if (current.ok()) {
    std::string snapshot(Trim(*current));
    if (!StartsWith(snapshot, kSnapshotPrefix) ||
        !ParseInt64(snapshot.substr(sizeof(kSnapshotPrefix) - 1),
                    &managed->generation_)) {
      return Status::Internal("bad CURRENT pointer \"" + snapshot +
                              "\" in " + directory);
    }
    PAPYRUS_RETURN_IF_ERROR(managed->Restore(snapshot));
    // Everything restored from CURRENT is durable by definition, so the
    // deferred publications queued during restore flush now. This closes
    // the crash window between a CURRENT swap and its flush: the restore
    // republishes (idempotently) what that flush would have.
    managed->session_->step_cache().FlushSharedPublications();
  }

  // Intra-session chaos lands after restore so crash times are relative
  // to the restored virtual clock.
  if (config.fault.seed != 0) {
    managed->fault_plan_ =
        std::make_unique<fault::FaultPlan>(config.fault);
    if (obs.trace != nullptr || obs.metrics != nullptr) {
      managed->fault_plan_->set_observability(obs);
    } else {
      managed->fault_plan_->set_observability(
          managed->session_->observability());
    }
    PAPYRUS_RETURN_IF_ERROR(managed->fault_plan_->Apply(
        &managed->session_->network(), &managed->session_->tools()));
  }
  return managed;
}

Status ManagedSession::Restore(const std::string& snapshot_dir) {
  std::filesystem::path dir =
      std::filesystem::path(directory_) / snapshot_dir;
  PAPYRUS_RETURN_IF_ERROR(session_->LoadSession(dir.string()));
  PAPYRUS_ASSIGN_OR_RETURN(std::string state_text,
                           ReadFileText(dir / kStateFile));
  PAPYRUS_RETURN_IF_ERROR(RestoreState(state_text));
  return ReplayMetadata();
}

Status ManagedSession::RestoreState(const std::string& state_text) {
  std::istringstream in(state_text);
  std::string line;
  if (!std::getline(in, line) || line != kStateHeader) {
    return Status::Internal("bad session state header for " + name_);
  }
  while (std::getline(in, line)) {
    std::vector<std::string> f = SplitWhitespace(line);
    if (f.empty()) continue;
    if (f[0] == "clock" && f.size() == 2) {
      int64_t micros = 0;
      if (!ParseInt64(f[1], &micros)) {
        return Status::Internal("bad clock line in session state");
      }
      // The restored history's timestamps end here; new work must
      // continue from the same virtual instant for byte-identity.
      session_->clock().SetMicros(micros);
    } else if (f[0] == "nextexec" && f.size() == 2) {
      int64_t next = 0;
      if (!ParseInt64(f[1], &next)) {
        return Status::Internal("bad nextexec line in session state");
      }
      session_->task_manager().set_next_execution_id(
          static_cast<int>(next));
    } else if (f[0] == "applied" && f.size() == 4) {
      int64_t task_id = 0;
      int64_t thread_id = 0;
      int64_t node_id = 0;
      if (!ParseInt64(f[1], &task_id) || !ParseInt64(f[2], &thread_id) ||
          !ParseInt64(f[3], &node_id)) {
        return Status::Internal("bad applied line in session state");
      }
      applied_[task_id] = {static_cast<int>(thread_id),
                           static_cast<activity::NodeId>(node_id)};
    }
  }
  return Status::OK();
}

std::string ManagedSession::SerializeState() const {
  std::ostringstream out;
  out << kStateHeader << '\n';
  out << "clock " << session_->clock().NowMicros() << '\n';
  out << "nextexec " << session_->task_manager().next_execution_id()
      << '\n';
  for (const auto& [task_id, where] : applied_) {
    out << "applied " << task_id << ' ' << where.first << ' '
        << where.second << '\n';
  }
  return out.str();
}

Status ManagedSession::ReplayMetadata() {
  // Metadata inference state is not persisted; re-observe every restored
  // record in commit order (commit timestamps strictly increase under
  // the serial daemon, so the order is the live observation order).
  struct Entry {
    int64_t micros;
    int thread_id;
    activity::NodeId node_id;
    const task::TaskHistoryRecord* record;
  };
  std::vector<Entry> entries;
  for (int thread_id : session_->activity().ThreadIds()) {
    auto thread = session_->activity().GetThread(thread_id);
    if (!thread.ok()) continue;
    for (const auto& [node_id, node] : (*thread)->nodes()) {
      if (node.is_junction || node.record.task_name.empty()) continue;
      entries.push_back(
          {node.appended_micros, thread_id, node_id, &node.record});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return std::tie(a.micros, a.thread_id, a.node_id) <
                     std::tie(b.micros, b.thread_id, b.node_id);
            });
  for (const Entry& e : entries) {
    PAPYRUS_RETURN_IF_ERROR(session_->metadata().Observe(*e.record));
  }
  return Status::OK();
}

Result<activity::NodeId> ManagedSession::AppliedNode(
    int64_t task_id) const {
  auto it = applied_.find(task_id);
  if (it == applied_.end()) {
    return Status::NotFound("task " + std::to_string(task_id) +
                            " not applied in session " + name_);
  }
  return it->second.second;
}

Result<int> ManagedSession::ThreadByName(const std::string& thread_name) {
  for (int id : session_->activity().ThreadIds()) {
    auto thread = session_->activity().GetThread(id);
    if (thread.ok() && (*thread)->name() == thread_name) return id;
  }
  return session_->CreateThread(thread_name);
}

Result<activity::NodeId> ManagedSession::Execute(
    int64_t task_id, const TaskDescription& desc) {
  PAPYRUS_ASSIGN_OR_RETURN(int thread_id, ThreadByName(desc.thread));
  activity::ActivityInvocation inv;
  inv.template_name = desc.template_name;
  inv.input_refs = desc.input_refs;
  inv.output_names = desc.output_names;
  inv.option_overrides = desc.option_overrides;
  inv.seed = desc.seed;
  PAPYRUS_ASSIGN_OR_RETURN(
      activity::NodeId node,
      session_->activity().InvokeTask(thread_id, inv));
  applied_[task_id] = {thread_id, node};
  return node;
}

Status ManagedSession::Save() {
  int64_t next_gen = generation_ + 1;
  std::string snapshot = kSnapshotPrefix + std::to_string(next_gen);
  std::filesystem::path dir =
      std::filesystem::path(directory_) / snapshot;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create " + dir.string() + ": " +
                            ec.message());
  }
  PAPYRUS_RETURN_IF_ERROR(session_->SaveSession(dir.string()));
  PAPYRUS_RETURN_IF_ERROR(storage::AtomicWriteFile(
      (dir / kStateFile).string(), SerializeState()));
  // The generation exists in full; only now may CURRENT point at it. A
  // crash before this line leaves the previous generation authoritative
  // (the half-built one is pruned on the next Save); a crash after it
  // leaves the new one. There is no in-between.
  PAPYRUS_RETURN_IF_ERROR(storage::AtomicWriteFile(
      (std::filesystem::path(directory_) / kCurrentFile).string(),
      snapshot));
  generation_ = next_gen;
  // The generation is durable; derivations it carries may now be shared
  // with other sessions through the content-addressed store.
  session_->step_cache().FlushSharedPublications();
  // Older generations (and aborted half-writes) are garbage; reclaim
  // best-effort.
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    if (!entry.is_directory()) continue;
    std::string base = entry.path().filename().string();
    if (StartsWith(base, kSnapshotPrefix) && base != snapshot) {
      std::error_code remove_ec;
      std::filesystem::remove_all(entry.path(), remove_ec);
    }
  }
  return Status::OK();
}

}  // namespace papyrus::server
