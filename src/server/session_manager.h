#ifndef PAPYRUS_SERVER_SESSION_MANAGER_H_
#define PAPYRUS_SERVER_SESSION_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "activity/design_thread.h"
#include "base/thread_annotations.h"
#include "core/papyrus.h"
#include "fault/fault_plan.h"
#include "obs/observability.h"
#include "server/wire.h"

namespace papyrus::server {

/// Session-shaping knobs the daemon applies to every hosted session (the
/// daemon-config face of core::SessionOptions).
struct SessionConfig {
  int num_workstations = 4;
  int worker_threads = task::DefaultWorkerThreads();
  int cache_interval = 8;
  /// Intra-session chaos: when `fault.seed != 0` the plan is applied to
  /// each session incarnation's network + tool registry. Note the plan
  /// schedules crashes at absolute virtual times, so runs that restart
  /// mid-flow see different chaos than crash-free runs — exactly-once
  /// commit still holds, byte-for-byte trace equality does not.
  fault::FaultPlanOptions fault = {.seed = 0};
  /// Every Nth ManagedSession::Save compacts a delta-snapshot generation
  /// (the others are WAL group commits). <= 1 compacts on every save.
  int snapshot_interval = 8;
};

/// One design session hosted by papyrusd, durably backed by the storage
/// engine (storage::SessionStore): a per-commit write-ahead log plus
/// periodic compacted delta-snapshot generations behind a manifest swap.
/// The session's extra daemon state — the virtual clock, the task
/// manager's execution-id counter (intermediate object names embed it),
/// and the applied-task ledger mapping queue task ids to committed
/// history nodes — rides the same WAL commits and generations as the
/// design data through Papyrus::StateHooks, so "task applied" and "task
/// recorded" are one atomic unit.
///
/// Pre-engine layouts (CURRENT -> snap.<N>/ whole-file snapshot
/// directories, including their state.pss) load transparently and
/// migrate at the first save.
///
/// Recovery invariant: a task's effects are durable exactly when its WAL
/// commit landed (journal-before-effect: Save runs before the queue
/// acknowledgement). The restored ledger therefore tells exactly which
/// queue tasks' effects are durable: the daemon skips execution of any
/// re-delivered task the ledger already contains — at-least-once
/// delivery, exactly-once commit — and because clock + execution ids +
/// histories restore bit-faithfully, a re-run of a task whose effects
/// were lost reproduces them byte-identically.
class ManagedSession {
 public:
  /// Opens (restoring from CURRENT, or creating fresh) the session named
  /// `name` stored under `directory`. Subsystem metrics and traces are
  /// rebound to `obs` when provided, so one daemon-lifetime registry and
  /// trace span every session and incarnation.
  /// `shared_store` (optional, not owned — the daemon's, shared by every
  /// hosted session) is attached with deferred publication: entries land
  /// in the store only after the snapshot generation carrying them is
  /// durable, so a daemon crash can never leak outputs of a commit that
  /// did not survive. Entries restored from CURRENT republish at Open
  /// (idempotent — they are durable by definition).
  static Result<std::unique_ptr<ManagedSession>> Open(
      const std::string& directory, const std::string& name,
      const SessionConfig& config, const obs::Observability& obs = {},
      storage::ContentStore* shared_store = nullptr);

  ManagedSession(const ManagedSession&) = delete;
  ManagedSession& operator=(const ManagedSession&) = delete;

  const std::string& name() const { return name_; }
  Papyrus& session() { return *session_; }
  int64_t generation() const { return generation_; }

  /// True when `task_id`'s effects are already durably committed (the
  /// ledger entry rode a CURRENT-visible generation).
  bool HasApplied(int64_t task_id) const {
    return applied_.count(task_id) != 0;
  }
  /// The committed history node of an applied task.
  Result<activity::NodeId> AppliedNode(int64_t task_id) const;

  /// Resolves the named design thread, creating it on first use.
  Result<int> ThreadByName(const std::string& thread_name)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Runs a task description in this session and records it in the
  /// in-memory applied ledger. The effects are durable only after the
  /// next Save() — the daemon saves before acknowledging the queue.
  Result<activity::NodeId> Execute(int64_t task_id,
                                   const TaskDescription& desc)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Makes everything committed so far durable: a WAL group commit (one
  /// fsync), with every SessionConfig::snapshot_interval-th call
  /// compacting a delta-snapshot generation instead. The daemon calls
  /// this before acknowledging a task to the queue.
  Status Save() PAPYRUS_REQUIRES(base::engine_thread);

  /// Forces a generation compaction (shutdown, eviction): bounds WAL
  /// replay cost for the next open.
  Status Checkpoint() PAPYRUS_REQUIRES(base::engine_thread);

 private:
  ManagedSession(std::string directory, std::string name);

  Status ApplyStateLine(const std::vector<std::string>& fields);
  Status RestoreState(const std::string& state_text)
      PAPYRUS_REQUIRES(base::engine_thread);
  std::string SerializeState() const;
  std::vector<std::string> DrainStateJournal()
      PAPYRUS_REQUIRES(base::engine_thread);
  /// Re-derives the ADG by re-observing every restored history record in
  /// commit order (metadata inference state is not persisted).
  Status ReplayMetadata() PAPYRUS_REQUIRES(base::engine_thread);

  std::string directory_;
  std::string name_;
  std::unique_ptr<Papyrus> session_;
  std::unique_ptr<fault::FaultPlan> fault_plan_;
  int64_t generation_ = 0;
  /// queue task id -> (thread id, committed node id)
  std::map<int64_t, std::pair<int, activity::NodeId>> applied_;

  // State-journal drain tracking: what the WAL already carries.
  int64_t journaled_clock_ = 0;
  int journaled_nextexec_ = 0;
  std::vector<int64_t> pending_applied_;  // task ids not yet journaled
  int snapshot_interval_ = 8;
  int saves_since_generation_ = 0;
};

}  // namespace papyrus::server

#endif  // PAPYRUS_SERVER_SESSION_MANAGER_H_
