#include "server/transport.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/macros.h"
#include "obs/metrics.h"
#include "server/wire.h"

namespace papyrus::server {

namespace {

constexpr int kListenBacklog = 64;
constexpr size_t kReadChunk = 4096;

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

/// The one response the transport writes itself: a client whose line
/// blew the size cap never reaches the dispatcher.
std::string OversizedLineResponse(size_t max_line_bytes) {
  WireMessage response;
  response.verb = "err";
  response.Add("msg", "request line exceeds " +
                          std::to_string(max_line_bytes) + " bytes");
  return response.Format();
}

ssize_t WriteSome(int fd, bool is_socket, const char* data, size_t len) {
  if (is_socket) {
    // MSG_NOSIGNAL: a client that vanished mid-response yields EPIPE,
    // not a process-killing SIGPIPE.
    return ::send(fd, data, len, MSG_NOSIGNAL);
  }
  return ::write(fd, data, len);
}

}  // namespace

std::vector<LineFramer::Line> LineFramer::Feed(std::string_view bytes) {
  std::vector<Line> lines;
  size_t start = 0;
  while (start <= bytes.size()) {
    size_t nl = bytes.find('\n', start);
    if (nl == std::string_view::npos) {
      if (!discarding_) {
        buffer_.append(bytes.substr(start));
        if (buffer_.size() > max_line_bytes_) {
          buffer_.clear();
          discarding_ = true;
        }
      }
      break;
    }
    if (discarding_) {
      // The terminator of a line that already blew the cap: report it
      // once, then resume normal framing.
      lines.push_back({std::string(), /*oversized=*/true});
      discarding_ = false;
    } else {
      buffer_.append(bytes.substr(start, nl - start));
      if (buffer_.size() > max_line_bytes_) {
        lines.push_back({std::string(), /*oversized=*/true});
      } else {
        lines.push_back({std::move(buffer_), /*oversized=*/false});
      }
      buffer_.clear();
    }
    start = nl + 1;
  }
  return lines;
}

SocketTransport::SocketTransport(const TransportOptions& options)
    : options_(options) {
  if (options_.metrics != nullptr) {
    g_connected_ =
        options_.metrics->FindOrCreateGauge(obs::kServerClientsConnected);
    c_total_ =
        options_.metrics->FindOrCreateCounter(obs::kServerClientsTotal);
    c_disconnected_ = options_.metrics->FindOrCreateCounter(
        obs::kServerClientsDisconnected);
    c_rejected_ = options_.metrics->FindOrCreateCounter(
        obs::kServerClientsRejectedLines);
  }
}

SocketTransport::~SocketTransport() {
  for (auto& [fd, conn] : connections_) {
    if (conn.is_socket) ::close(conn.in_fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

Result<std::unique_ptr<SocketTransport>> SocketTransport::Listen(
    const TransportOptions& options) {
  std::unique_ptr<SocketTransport> transport(new SocketTransport(options));
  if (!options.socket_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options.socket_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("socket path too long: " +
                                     options.socket_path);
    }
    std::strncpy(addr.sun_path, options.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      return Status::Internal(std::string("socket(): ") +
                              std::strerror(errno));
    }
    // A previous incarnation's socket file would make bind fail; the
    // queue lock already arbitrates daemon identity, so take the path.
    ::unlink(options.socket_path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, kListenBacklog) < 0) {
      Status st = Status::Internal("cannot listen on " +
                                   options.socket_path + ": " +
                                   std::strerror(errno));
      ::close(fd);
      return st;
    }
    Status nb = SetNonBlocking(fd);
    if (!nb.ok()) {
      ::close(fd);
      return nb;
    }
    transport->listen_fd_ = fd;
  }
  if (options.serve_stdin) {
    Connection conn;
    conn.in_fd = STDIN_FILENO;
    conn.out_fd = STDOUT_FILENO;
    conn.is_socket = false;
    conn.framer = LineFramer(options.max_line_bytes);
    conn.context.client_name = "stdin";
    transport->connections_.emplace(STDIN_FILENO, std::move(conn));
    if (transport->g_connected_ != nullptr) {
      transport->g_connected_->Set(1);
    }
    if (transport->c_total_ != nullptr) transport->c_total_->Increment();
  }
  return transport;
}

int SocketTransport::open_connections() const {
  return static_cast<int>(connections_.size());
}

void SocketTransport::Accept() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: next poll round
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    Connection conn;
    conn.in_fd = fd;
    conn.out_fd = fd;
    conn.is_socket = true;
    conn.framer = LineFramer(options_.max_line_bytes);
    connections_.emplace(fd, std::move(conn));
    if (c_total_ != nullptr) c_total_->Increment();
    if (g_connected_ != nullptr) {
      g_connected_->Set(static_cast<int64_t>(connections_.size()));
    }
  }
}

bool SocketTransport::ServiceRead(Connection* conn,
                                  const Handler& handler) {
  char chunk[kReadChunk];
  while (true) {
    ssize_t n = ::read(conn->in_fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // connection error
    }
    if (n == 0) {
      // Orderly EOF. A partial line buffered here is a request that
      // never completed — counted, never dispatched.
      return false;
    }
    for (LineFramer::Line& line :
         conn->framer.Feed(std::string_view(chunk, n))) {
      std::string response;
      if (line.oversized) {
        if (c_rejected_ != nullptr) c_rejected_->Increment();
        response = OversizedLineResponse(options_.max_line_bytes);
      } else if (line.text.empty() || line.text[0] == '#') {
        continue;  // blank lines and comments, as on stdin
      } else {
        response = handler(line.text, &conn->context);
      }
      conn->out += response;
      conn->out += '\n';
    }
    if (!ServiceWrite(conn)) return false;
    if (static_cast<ssize_t>(sizeof(chunk)) > n) return true;
  }
}

bool SocketTransport::ServiceWrite(Connection* conn) {
  while (!conn->out.empty()) {
    ssize_t n = WriteSome(conn->out_fd, conn->is_socket, conn->out.data(),
                          conn->out.size());
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;  // EPIPE: the client is gone
    }
    conn->out.erase(0, static_cast<size_t>(n));
  }
  return true;
}

void SocketTransport::CloseConnection(
    std::map<int, Connection>::iterator it, bool count_partial) {
  Connection& conn = it->second;
  if (count_partial && conn.framer.HasPartial() && c_rejected_ != nullptr) {
    c_rejected_->Increment();
  }
  if (conn.is_socket) ::close(conn.in_fd);
  connections_.erase(it);
  if (c_disconnected_ != nullptr) c_disconnected_->Increment();
  if (g_connected_ != nullptr) {
    g_connected_->Set(static_cast<int64_t>(connections_.size()));
  }
}

Status SocketTransport::PollOnce(const Handler& handler, int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(connections_.size() + 1);
  if (listen_fd_ >= 0) {
    fds.push_back({listen_fd_, POLLIN, 0});
  }
  for (auto& [fd, conn] : connections_) {
    short events = POLLIN;
    if (!conn.out.empty()) events |= POLLOUT;
    fds.push_back({conn.in_fd, events, 0});
  }
  int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Status::OK();
    return Status::Internal(std::string("poll(): ") +
                            std::strerror(errno));
  }
  if (ready == 0) return Status::OK();
  size_t i = 0;
  if (listen_fd_ >= 0) {
    if ((fds[0].revents & POLLIN) != 0) Accept();
    i = 1;
  }
  for (; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    auto it = connections_.find(fds[i].fd);
    if (it == connections_.end()) continue;
    Connection& conn = it->second;
    bool alive = true;
    if ((fds[i].revents & POLLOUT) != 0) alive = ServiceWrite(&conn);
    if (alive && (fds[i].revents & (POLLIN | POLLHUP)) != 0) {
      alive = ServiceRead(&conn, handler);
    }
    if (alive && (fds[i].revents & POLLERR) != 0) alive = false;
    if (!alive) CloseConnection(it, /*count_partial=*/true);
  }
  return Status::OK();
}

Status SocketTransport::Run(const Handler& handler,
                            const std::function<bool()>& stop) {
  // Event-loop top: every handler call below runs on this (engine)
  // thread, one request at a time, whatever the client concurrency.
  base::AssertEngineThread("SocketTransport::Run");
  while (!stop()) {
    // With no listener, the loop lives only as long as its streams.
    if (listen_fd_ < 0 && connections_.empty()) break;
    PAPYRUS_RETURN_IF_ERROR(PollOnce(handler, /*timeout_ms=*/50));
  }
  // Final courtesy flush so responses to the request that triggered the
  // stop (e.g. `shutdown`) reach their clients.
  for (auto& [fd, conn] : connections_) (void)ServiceWrite(&conn);
  return Status::OK();
}

WireClient::~WireClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WireClient>> WireClient::Connect(
    const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Unavailable("cannot connect to " + socket_path +
                                    ": " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  return std::unique_ptr<WireClient>(new WireClient(fd));
}

Status WireClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client closed");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send(): ") +
                                 std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> WireClient::ReadLine() {
  if (fd_ < 0) return Status::FailedPrecondition("client closed");
  while (true) {
    size_t nl = in_buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = in_buffer_.substr(0, nl);
      in_buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[kReadChunk];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("read(): ") +
                                 std::strerror(errno));
    }
    if (n == 0) {
      return Status::Unavailable("daemon closed the connection");
    }
    in_buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> WireClient::Call(const std::string& line) {
  PAPYRUS_RETURN_IF_ERROR(SendRaw(line + "\n"));
  return ReadLine();
}

void WireClient::CloseAbruptly() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace papyrus::server
