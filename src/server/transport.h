#ifndef PAPYRUS_SERVER_TRANSPORT_H_
#define PAPYRUS_SERVER_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "obs/observability.h"

namespace papyrus::server {

/// Per-connection daemon state: who the client says it is (`connect
/// ~client=`) and which session its unqualified requests target
/// (`attach ~session=`). Owned by the transport, one per connection,
/// passed by pointer into every dispatch for that connection.
struct ClientContext {
  std::string client_name;
  std::string attached_session;
};

/// Incremental line framing over a byte stream that arrives in
/// arbitrary fragments: a read may end mid-line (even mid-percent-
/// escape) or carry many coalesced requests — Feed buffers partial
/// tails and emits each completed line exactly once, whatever the
/// fragmentation. A line that exceeds `max_line_bytes` before its
/// newline arrives is discarded (the framer keeps eating until the
/// terminator) and surfaces as one `oversized` entry, so a hostile or
/// broken client cannot balloon the daemon's memory.
class LineFramer {
 public:
  static constexpr size_t kDefaultMaxLineBytes = 1 << 20;

  struct Line {
    std::string text;
    bool oversized = false;
  };

  explicit LineFramer(size_t max_line_bytes = kDefaultMaxLineBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Consumes a fragment; returns the lines it completed, in order.
  std::vector<Line> Feed(std::string_view bytes);

  /// True when bytes of an unterminated line are buffered (a client
  /// that disconnects here died mid-request).
  bool HasPartial() const { return !buffer_.empty() || discarding_; }

 private:
  size_t max_line_bytes_;
  std::string buffer_;
  bool discarding_ = false;
};

struct TransportOptions {
  /// Unix-domain socket path to listen on; empty = no listener (stdin
  /// only). Unlinked on destruction.
  std::string socket_path;
  /// Serve the wire protocol on stdin/stdout alongside the socket (the
  /// PR 6 transport, retained).
  bool serve_stdin = true;
  size_t max_line_bytes = LineFramer::kDefaultMaxLineBytes;
  /// For the papyrus.server.clients_* metrics; may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The daemon's concurrent client layer: a poll()-driven event loop
/// multiplexing one Unix-domain-socket listener plus the retained
/// stdin stream over any number of simultaneous connections.
///
/// Concurrency lives entirely at the I/O edge. Reads and writes are
/// interleaved and partial per connection, but every completed request
/// line is dispatched to the handler *sequentially on the engine
/// thread* (Run() is the event-loop top and vouches for the role), so
/// the deterministic-mutation contract over the engine is untouched —
/// many clients, one dispatch loop.
class SocketTransport {
 public:
  /// Handles one request line for one client; returns the response
  /// line (without trailing newline).
  using Handler =
      std::function<std::string(const std::string& line, ClientContext* ctx)>;

  static Result<std::unique_ptr<SocketTransport>> Listen(
      const TransportOptions& options);

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;
  ~SocketTransport();

  /// Runs the event loop until `stop()` returns true (checked between
  /// poll rounds) — typically "the daemon shut down or crashed". The
  /// stdin stream closing does not stop the loop while a listener is
  /// live; socket clients keep being served.
  Status Run(const Handler& handler, const std::function<bool()>& stop)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// One bounded poll round (used by Run; exposed for tests that
  /// interleave transport progress with other work).
  Status PollOnce(const Handler& handler, int timeout_ms)
      PAPYRUS_REQUIRES(base::engine_thread);

  int open_connections() const;
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Connection {
    int in_fd = -1;
    int out_fd = -1;   // != in_fd only for the stdin/stdout pair
    bool is_socket = false;
    LineFramer framer;
    std::string out;   // bytes accepted but not yet written
    ClientContext context;
    bool closing = false;  // flush pending output, then close
  };

  explicit SocketTransport(const TransportOptions& options);

  void Accept();
  /// Reads what is available, dispatches completed lines, queues the
  /// responses. Returns false when the connection is gone.
  bool ServiceRead(Connection* conn, const Handler& handler);
  /// Flushes as much buffered output as the fd accepts right now.
  bool ServiceWrite(Connection* conn);
  void CloseConnection(std::map<int, Connection>::iterator it,
                       bool count_partial);

  TransportOptions options_;
  int listen_fd_ = -1;
  /// Keyed by in_fd.
  std::map<int, Connection> connections_;

  obs::Gauge* g_connected_ = nullptr;
  obs::Counter* c_total_ = nullptr;
  obs::Counter* c_disconnected_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
};

/// A blocking wire-protocol client for the daemon socket: the shell's
/// `daemon connect`, the scale bench, and the adversarial framing tests
/// speak through this (the latter via the raw send/read calls).
class WireClient {
 public:
  static Result<std::unique_ptr<WireClient>> Connect(
      const std::string& socket_path);

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  ~WireClient();

  /// Sends one request line and blocks for its response line.
  Result<std::string> Call(const std::string& line);

  /// Raw bytes, exactly as given — lets tests split lines mid-escape or
  /// coalesce many requests into one segment.
  Status SendRaw(std::string_view bytes);
  /// Blocks until the next complete response line.
  Result<std::string> ReadLine();

  /// Drops the connection without reading pending responses (abrupt
  /// disconnect mid-request, from the daemon's point of view).
  void CloseAbruptly();

 private:
  explicit WireClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string in_buffer_;
};

}  // namespace papyrus::server

#endif  // PAPYRUS_SERVER_TRANSPORT_H_
