#include "server/daemon.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "base/macros.h"
#include "base/strings.h"
#include "base/thread_annotations.h"
#include "lint/wire_analyzer.h"
#include "oct/design_data.h"
#include "tdl/template.h"

namespace papyrus::server {

namespace {

/// splitmix64: the seeded stream behind the crash plan's draws.
uint64_t NextDraw(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Globally unique claim-owner tokens: the pid distinguishes sibling
/// worker processes on one shared queue, the counter distinguishes
/// incarnations within a process — a stale incarnation's lease can
/// never be confused with the current holder's.
std::string NextOwnerToken() {
  static int counter = 0;
  return "papyrusd-" + std::to_string(::getpid()) + "-" +
         std::to_string(++counter);
}

std::string ErrorLine(const std::string& message) {
  WireMessage response;
  response.verb = "err";
  response.Add("msg", message);
  return response.Format();
}

}  // namespace

DaemonCrashPlan::DaemonCrashPlan(uint64_t seed, double crash_rate,
                                 int max_crashes)
    : state_(seed ^ 0x706a7079727573ULL),
      rate_(crash_rate),
      max_(max_crashes) {}

DaemonCrashPlan::DaemonCrashPlan(std::vector<int64_t> fire_on_draws)
    : max_(static_cast<int>(fire_on_draws.size())),
      fire_on_draws_(std::move(fire_on_draws)) {
  std::sort(fire_on_draws_.begin(), fire_on_draws_.end());
}

bool DaemonCrashPlan::ShouldCrash() {
  ++draws_;
  if (!fire_on_draws_.empty()) {
    if (!std::binary_search(fire_on_draws_.begin(), fire_on_draws_.end(),
                            draws_)) {
      return false;
    }
    ++fired_;
    return true;
  }
  double draw = static_cast<double>(NextDraw(&state_) >> 11) *
                (1.0 / 9007199254740992.0);  // [0, 1)
  if (fired_ >= max_ || draw >= rate_) return false;
  ++fired_;
  return true;
}

PapyrusDaemon::PapyrusDaemon(const DaemonOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : &owned_clock_),
      owner_(NextOwnerToken()) {
  base::AssertEngineThread("PapyrusDaemon::PapyrusDaemon");
  obs::MetricsRegistry* metrics = options_.metrics;
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  obs::TraceRecorder* trace = options_.trace;
  if (trace == nullptr) {
    owned_trace_ = std::make_unique<obs::TraceRecorder>(clock_);
    if (!options_.trace_path.empty()) owned_trace_->set_enabled(true);
    trace = owned_trace_.get();
  }
  obs_ = {trace, metrics};
  c_executed_ = metrics->FindOrCreateCounter(obs::kServerTasksExecuted);
  c_deduped_ = metrics->FindOrCreateCounter(obs::kServerTasksDeduped);
  c_restarts_ = metrics->FindOrCreateCounter(obs::kServerRestarts);
  c_crashes_ =
      metrics->FindOrCreateCounter(obs::kServerCrashesInjected);
  c_wire_ = metrics->FindOrCreateCounter(obs::kServerWireRequests);
  g_sessions_ = metrics->FindOrCreateGauge(obs::kServerSessionsOpen);
  h_task_latency_ = metrics->FindOrCreateHistogram(
      obs::kServerTaskLatency, obs::LatencyBucketBounds());
}

PapyrusDaemon::~PapyrusDaemon() = default;

Result<std::unique_ptr<PapyrusDaemon>> PapyrusDaemon::Start(
    const DaemonOptions& options) {
  base::AssertEngineThread("PapyrusDaemon::Start");
  if (options.root.empty()) {
    return Status::InvalidArgument("daemon root directory required");
  }
  std::unique_ptr<PapyrusDaemon> daemon(new PapyrusDaemon(options));
  std::string queue_dir =
      (std::filesystem::path(options.root) / "queue").string();
  QueueOptions queue_options;
  queue_options.shared = options.shared_queue;
  PAPYRUS_ASSIGN_OR_RETURN(
      daemon->queue_,
      PersistentQueue::Open(queue_dir, daemon->clock_, daemon->obs_,
                            queue_options));
  if (options.shared_queue) {
    // Session locks live alongside the session directories.
    std::error_code lock_ec;
    std::filesystem::create_directories(
        std::filesystem::path(options.root) / "sessions", lock_ec);
    if (lock_ec) {
      return Status::Internal("cannot create sessions directory: " +
                              lock_ec.message());
    }
  }
  daemon->obs_.trace->SetProcessName(obs::kServerPid, "papyrusd");
  daemon->obs_.trace->SetThreadName(obs::kServerPid, 0, "queue");
  // The daemon-wide artifact store: one per root, shared by every hosted
  // session, surviving restarts (Open recovers + garbage-collects).
  storage::CasOptions cas_options;
  cas_options.size_budget_bytes = options.cas_budget_bytes;
  {
    // Opening the store recovers and garbage-collects it; in shared
    // mode, serialize that against sibling workers starting up.
    std::unique_ptr<storage::FileLock> cas_lock;
    if (options.shared_queue) {
      PAPYRUS_ASSIGN_OR_RETURN(
          cas_lock,
          storage::FileLock::Acquire(
              (std::filesystem::path(options.root) / "cas.lock")
                  .string()));
    }
    PAPYRUS_ASSIGN_OR_RETURN(
        daemon->shared_store_,
        storage::ContentStore::Open(
            (std::filesystem::path(options.root) / "cas").string(),
            cas_options));
  }
  daemon->shared_store_->set_observability(daemon->obs_);
  if (daemon->queue_->recovered() > 0) {
    // Unresolved claims mean the previous incarnation died hot.
    daemon->c_restarts_->Increment();
    daemon->TraceInstant(
        "queue_recovered",
        {obs::TraceArg::Int("tasks", daemon->queue_->recovered())});
  }
  return daemon;
}

void PapyrusDaemon::TraceInstant(const std::string& name,
                                 std::vector<obs::TraceArg> args) {
  obs_.trace->Instant(obs::kServerPid, 0, name, "server",
                      std::move(args));
}

Result<int64_t> PapyrusDaemon::Submit(const TaskDescription& desc) {
  base::AssertEngineThread("PapyrusDaemon::Submit");
  if (crashed_) return Status::FailedPrecondition("daemon crashed");
  if (shut_down_) return Status::FailedPrecondition("daemon shut down");
  PAPYRUS_ASSIGN_OR_RETURN(int64_t id,
                           queue_->Enqueue(desc.session, desc.Encode()));
  TraceInstant("task_enqueued",
               {obs::TraceArg::Int("id", id),
                obs::TraceArg::Str("session", desc.session),
                obs::TraceArg::Str("template", desc.template_name)});
  return id;
}

Result<ManagedSession*> PapyrusDaemon::OpenSession(
    const std::string& name) {
  base::AssertEngineThread("PapyrusDaemon::OpenSession");
  if (name.empty() || name.find('/') != std::string::npos ||
      name == "." || name == "..") {
    return Status::InvalidArgument("bad session name \"" + name + "\"");
  }
  auto it = sessions_.find(name);
  if (it != sessions_.end()) {
    TouchSession(name);
    return it->second.get();
  }
  if (!EnsureSessionLock(name)) {
    return Status::Unavailable("session \"" + name +
                               "\" is hosted by another worker");
  }
  std::string dir =
      (std::filesystem::path(options_.root) / "sessions" / name)
          .string();
  PAPYRUS_ASSIGN_OR_RETURN(
      auto session,
      ManagedSession::Open(dir, name, options_.session, obs_,
                           shared_store_.get()));
  ManagedSession* raw = session.get();
  sessions_[name] = std::move(session);
  TouchSession(name);
  MaybeEvictSessions(name);
  g_sessions_->Set(static_cast<int64_t>(sessions_.size()));
  return raw;
}

std::string PapyrusDaemon::SessionLockPath(const std::string& name) const {
  return (std::filesystem::path(options_.root) / "sessions" /
          (name + ".lock"))
      .string();
}

bool PapyrusDaemon::EnsureSessionLock(const std::string& name) {
  if (!options_.shared_queue) return true;
  if (session_locks_.count(name) != 0) return true;
  if (name.empty() || name.find('/') != std::string::npos ||
      name == "." || name == "..") {
    // Unlockable name: let the claim proceed so execution can fail the
    // task permanently instead of it pending forever.
    return true;
  }
  auto lock = storage::FileLock::TryAcquire(SessionLockPath(name));
  if (!lock.ok()) return !lock.status().IsUnavailable();
  session_locks_[name] = std::move(lock).value();
  return true;
}

bool PapyrusDaemon::BenignSupersession(const Status& status) const {
  // A sibling worker's expiry scan reaped our lease (virtual clocks
  // advance independently across workers). Our effects are durable and
  // ledgered, so whoever re-claims the task dedupes it — losing the
  // acknowledgement race is not an error.
  return options_.shared_queue && (status.IsFailedPrecondition() ||
                                   status.IsPermissionDenied());
}

void PapyrusDaemon::TouchSession(const std::string& name) {
  session_last_used_[name] = ++session_use_tick_;
}

void PapyrusDaemon::MaybeEvictSessions(const std::string& keep) {
  if (options_.max_open_sessions <= 0) return;
  while (static_cast<int>(sessions_.size()) > options_.max_open_sessions) {
    std::string victim;
    int64_t oldest = 0;
    for (const auto& [name, session] : sessions_) {
      if (name == keep) continue;
      int64_t used = session_last_used_[name];
      if (victim.empty() || used < oldest) {
        victim = name;
        oldest = used;
      }
    }
    if (victim.empty()) return;
    // Idle between tasks, and every commit is WAL-durable; the parting
    // generation checkpoint (best-effort) just makes the next open
    // cheap. The session lock goes too, handing hosting rights back to
    // the worker pool.
    auto victim_it = sessions_.find(victim);
    if (victim_it != sessions_.end()) {
      (void)victim_it->second->Checkpoint();
    }
    sessions_.erase(victim);
    session_locks_.erase(victim);
    session_last_used_.erase(victim);
    TraceInstant("session_evicted", {obs::TraceArg::Str("name", victim)});
  }
  g_sessions_->Set(static_cast<int64_t>(sessions_.size()));
}

std::vector<lint::Diagnostic> PapyrusDaemon::PreflightQueue() const {
  // Sessions check tasks against the thesis library (Papyrus registers
  // it at construction), so pre-flight resolves against the same one.
  tdl::TemplateLibrary library;
  (void)tdl::RegisterThesisTemplates(&library);
  std::string label =
      (std::filesystem::path(options_.root) / "queue").string();
  return lint::PreflightQueuedTasks(queue_->Tasks(), &library, label);
}

bool PapyrusDaemon::MaybeCrash(const char* point) {
  if (options_.crash_plan == nullptr ||
      !options_.crash_plan->ShouldCrash()) {
    return false;
  }
  crashed_ = true;
  c_crashes_->Increment();
  TraceInstant("crash_injected", {obs::TraceArg::Str("point", point)});
  return true;
}

Status PapyrusDaemon::CrashStatus(const char* point) const {
  return Status::Aborted(std::string("daemon crash injected at ") +
                         point);
}

ClaimPolicy PapyrusDaemon::MakeClaimPolicy() {
  ClaimPolicy policy;
  policy.fair = options_.fair_dispatch;
  policy.max_inflight_per_session = options_.max_inflight_per_session;
  if (!options_.dispatch_weights.empty()) {
    policy.weights = &options_.dispatch_weights;
  }
  if (options_.shared_queue) {
    policy.session_filter = [this](const std::string& name) {
      return EnsureSessionLock(name);
    };
  }
  return policy;
}

Result<bool> PapyrusDaemon::RunOne() {
  base::AssertEngineThread("PapyrusDaemon::RunOne");
  if (crashed_) return Status::FailedPrecondition("daemon crashed");
  if (shut_down_) return Status::FailedPrecondition("daemon shut down");
  queue_->ExpireLeases();
  PAPYRUS_ASSIGN_OR_RETURN(
      auto claimed,
      queue_->Claim(owner_, options_.lease_micros, MakeClaimPolicy()));
  if (!claimed.has_value()) return false;
  const QueueTask task = *claimed;
  TraceInstant("task_claimed", {obs::TraceArg::Int("id", task.id),
                                obs::TraceArg::Int("attempt",
                                                   task.attempts)});
  // Crash point 1: claim journaled, nothing executed. Recovery re-pends
  // the claim; the task runs fresh in the next incarnation.
  if (MaybeCrash("before_execute")) return CrashStatus("before_execute");

  auto desc = TaskDescription::Decode(task.description);
  if (!desc.ok()) {
    // Malformed descriptions can never execute; retrying is pointless.
    PAPYRUS_RETURN_IF_ERROR(
        queue_->Fail(task.id, owner_, desc.status().message()));
    TraceInstant("task_failed", {obs::TraceArg::Int("id", task.id)});
    return true;
  }
  PAPYRUS_ASSIGN_OR_RETURN(ManagedSession * session,
                           OpenSession(desc->session));

  if (session->HasApplied(task.id)) {
    // The previous incarnation crashed between persisting the snapshot
    // and journaling done: the effects are durable, only the
    // acknowledgement is missing. Complete without re-executing —
    // this is what turns at-least-once delivery into exactly-once
    // commit.
    c_deduped_->Increment();
    TraceInstant("task_deduped", {obs::TraceArg::Int("id", task.id)});
    Status done = queue_->Complete(task.id, owner_);
    if (!done.ok() && !BenignSupersession(done)) return done;
    return true;
  }

  int64_t session_before = session->session().clock().NowMicros();
  auto node = session->Execute(task.id, *desc);
  // The daemon clock advances by the session's virtual progress, so
  // queue timestamps and the daemon trace stay monotone across every
  // session and incarnation.
  int64_t delta =
      session->session().clock().NowMicros() - session_before;
  if (delta > 0) clock_->AdvanceMicros(delta);
  if (!node.ok()) {
    if (task.attempts >= options_.max_task_attempts) {
      Status failed = queue_->Fail(task.id, owner_, node.status().message());
      if (!failed.ok() && !BenignSupersession(failed)) return failed;
      TraceInstant("task_failed", {obs::TraceArg::Int("id", task.id)});
    } else {
      Status released = queue_->Release(task.id, owner_);
      if (!released.ok() && !BenignSupersession(released)) return released;
      TraceInstant("task_released", {obs::TraceArg::Int("id", task.id)});
    }
    return true;
  }
  // Crash point 2: executed but nothing saved. The in-memory effects
  // die with this incarnation; recovery re-runs the task from the last
  // durable snapshot, reproducing them byte-identically (clock and
  // execution ids restore exactly).
  if (MaybeCrash("after_execute")) return CrashStatus("after_execute");

  PAPYRUS_RETURN_IF_ERROR(session->Save());
  // Crash point 3: effects durable, done not journaled. Recovery
  // re-claims the task and the applied ledger dedupes it above.
  if (MaybeCrash("after_save")) return CrashStatus("after_save");

  Status done = queue_->Complete(task.id, owner_);
  if (!done.ok()) {
    if (!BenignSupersession(done)) return done;
    TraceInstant("task_superseded", {obs::TraceArg::Int("id", task.id)});
    return true;
  }
  c_executed_->Increment();
  if (delta > 0) h_task_latency_->Observe(delta);
  TraceInstant("task_done", {obs::TraceArg::Int("id", task.id),
                             obs::TraceArg::Int("node", *node)});
  return true;
}

Status PapyrusDaemon::Drain() {
  base::AssertEngineThread("PapyrusDaemon::Drain");
  while (true) {
    PAPYRUS_ASSIGN_OR_RETURN(bool ran, RunOne());
    if (!ran) break;
  }
  return Status::OK();
}

Status PapyrusDaemon::WorkerDrain() {
  base::AssertEngineThread("PapyrusDaemon::WorkerDrain");
  // "Nothing claimable" is not "done" on a shared queue: pending tasks
  // may belong to sessions locked by siblings, and claimed tasks may be
  // theirs in flight. Done means globally empty — or nothing left that
  // this worker can ever claim.
  int stalled_rounds = 0;
  int futile_nudges = 0;
  while (true) {
    PAPYRUS_ASSIGN_OR_RETURN(bool ran, RunOne());
    if (ran) {
      stalled_rounds = 0;
      futile_nudges = 0;
      continue;
    }
    PAPYRUS_RETURN_IF_ERROR(queue_->Refresh());
    if (queue_->depth() == 0) return Status::OK();
    ++stalled_rounds;
    if (stalled_rounds > 50) {
      // Unclaimable work but no progress for ~100ms of wall time: a
      // sibling may have died holding leases. Leases expire in virtual
      // time, which only execution advances — nudge it so the reaper
      // can run. Expiring a live sibling's lease is benign: it still
      // holds the session lock, so nobody re-runs its task; it just
      // loses the acknowledgement race (BenignSupersession).
      clock_->AdvanceMicros(options_.lease_micros / 4 + 1);
      stalled_rounds = 0;
      // A dead sibling's locks died with its process (flock), so its
      // re-pended work becomes claimable after a nudge or two. If
      // nudging repeatedly frees nothing, the remainder is hosted by
      // live siblings — e.g. a front-end that executes its sessions'
      // tasks on its clients' schedule. Waiting on that would hang
      // forever; cede the work to its hosts and exit.
      if (++futile_nudges > 10) {
        TraceInstant("worker_ceded",
                     {obs::TraceArg::Int(
                         "depth", static_cast<int64_t>(queue_->depth()))});
        return Status::OK();
      }
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

Status PapyrusDaemon::Shutdown() {
  base::AssertEngineThread("PapyrusDaemon::Shutdown");
  if (crashed_) {
    return Status::FailedPrecondition("daemon crashed; cannot shut down");
  }
  if (shut_down_) return Status::OK();
  // Leases drain naturally (RunOne resolves its claim before returning);
  // what graceful shutdown adds is a generation checkpoint per hosted
  // session (bounding WAL replay at the next open), the compacted queue
  // checkpoint, and a sealed trace.
  for (auto& [name, session] : sessions_) {
    PAPYRUS_RETURN_IF_ERROR(session->Checkpoint());
  }
  PAPYRUS_RETURN_IF_ERROR(queue_->Checkpoint());
  TraceInstant("daemon_shutdown", {});
  if (owned_trace_ != nullptr) {
    owned_trace_->Finish();
    if (!options_.trace_path.empty()) {
      PAPYRUS_RETURN_IF_ERROR(
          owned_trace_->WriteJson(options_.trace_path));
    }
  }
  if (owned_metrics_ != nullptr && !options_.metrics_path.empty()) {
    std::ofstream out(options_.metrics_path, std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot write " + options_.metrics_path);
    }
    out << owned_metrics_->ToJson();
  }
  shut_down_ = true;
  return Status::OK();
}

namespace {

/// The request's target session: an explicit ~session field, else the
/// session the connection attached to.
const std::string* SessionField(const WireMessage& request,
                                const ClientContext& ctx) {
  const std::string* session = request.Find("session");
  if (session != nullptr) return session;
  if (!ctx.attached_session.empty()) return &ctx.attached_session;
  return nullptr;
}

}  // namespace

Result<std::string> PapyrusDaemon::HandleCheckin(
    const WireMessage& request, const ClientContext& ctx) {
  base::AssertEngineThread("PapyrusDaemon::HandleCheckin");
  const std::string* session_name = SessionField(request, ctx);
  const std::string* path = request.Find("path");
  const std::string* type = request.Find("type");
  if (session_name == nullptr || path == nullptr || type == nullptr) {
    return Status::InvalidArgument(
        "checkin needs ~session (or an attached session), ~path, and "
        "~type");
  }
  auto get_int = [&](const char* key, int64_t fallback) {
    const std::string* v = request.Find(key);
    int64_t out = fallback;
    if (v != nullptr) (void)ParseInt64(*v, &out);
    return out;
  };
  oct::DesignPayload payload;
  if (*type == "text") {
    const std::string* text = request.Find("text");
    payload = oct::TextData{text != nullptr ? *text : ""};
  } else if (*type == "behav") {
    oct::BehavioralSpec spec;
    spec.num_inputs = static_cast<int>(get_int("inputs", 0));
    spec.num_outputs = static_cast<int>(get_int("outputs", 0));
    spec.complexity = static_cast<int>(get_int("complexity", 0));
    spec.seed = static_cast<uint64_t>(get_int("seed", 0));
    payload = spec;
  } else if (*type == "layout") {
    oct::Layout layout;
    layout.num_cells = static_cast<int>(get_int("cells", 0));
    layout.area = static_cast<double>(get_int("area", 0));
    layout.seed = static_cast<uint64_t>(get_int("seed", 0));
    payload = layout;
  } else {
    return Status::InvalidArgument("unknown checkin type \"" + *type +
                                   "\"");
  }
  PAPYRUS_ASSIGN_OR_RETURN(ManagedSession * session,
                           OpenSession(*session_name));
  PAPYRUS_ASSIGN_OR_RETURN(
      oct::ObjectId id,
      session->session().CheckInObject(*path, std::move(payload)));
  // Check-ins are daemon state like everything else: durable before the
  // acknowledgement goes back over the wire.
  PAPYRUS_RETURN_IF_ERROR(session->Save());
  return id.ToString();
}

std::string PapyrusDaemon::HandleLine(const std::string& line) {
  return HandleLine(line, &default_context_);
}

std::string PapyrusDaemon::HandleLine(const std::string& line,
                                      ClientContext* ctx) {
  // Event-loop top: every verb handler below inherits the engine role.
  base::AssertEngineThread("PapyrusDaemon::HandleLine");
  c_wire_->Increment();
  auto request = WireMessage::Parse(line);
  if (!request.ok()) return ErrorLine(request.status().message());
  return HandleLineImpl(*request, ctx);
}

std::string PapyrusDaemon::HandleLineImpl(const WireMessage& request,
                                          ClientContext* ctx) {
  base::AssertEngineThread("PapyrusDaemon::HandleLineImpl");
  WireMessage response;
  response.verb = "ok";
  if (request.verb == "ping") {
    response.Add("pong", "1");
    return response.Format();
  }
  if (request.verb == "connect") {
    // A hello from a transport client: names the connection (for traces
    // and operators) and reports the protocol generation.
    if (const std::string* client = request.Find("client")) {
      ctx->client_name = *client;
    }
    response.Add("proto", "1");
    if (!ctx->client_name.empty()) {
      response.Add("client", ctx->client_name);
    }
    TraceInstant("client_connect",
                 {obs::TraceArg::Str("client", ctx->client_name)});
    return response.Format();
  }
  if (request.verb == "attach") {
    // Pins this connection to a session: later submit/checkin lines may
    // omit ~session. Opens the session so a bad name fails here, not at
    // the first task.
    const std::string* session_name = request.Find("session");
    if (session_name == nullptr) return ErrorLine("attach needs ~session");
    auto session = OpenSession(*session_name);
    if (!session.ok()) return ErrorLine(session.status().message());
    ctx->attached_session = *session_name;
    response.Add("session", *session_name);
    response.Add("generation", std::to_string((*session)->generation()));
    return response.Format();
  }
  if (request.verb == "submit") {
    TaskDescription desc;
    const std::string* session = SessionField(request, *ctx);
    const std::string* thread = request.Find("thread");
    const std::string* template_name = request.Find("template");
    if (session == nullptr || thread == nullptr ||
        template_name == nullptr) {
      return ErrorLine(
          "submit needs ~session (or an attached session), ~thread, and "
          "~template");
    }
    desc.session = *session;
    desc.thread = *thread;
    desc.template_name = *template_name;
    if (const std::string* seed = request.Find("seed")) {
      int64_t value = 0;
      if (!ParseInt64(*seed, &value) || value < 0) {
        return ErrorLine("bad seed \"" + *seed + "\"");
      }
      desc.seed = static_cast<uint64_t>(value);
    }
    desc.input_refs = request.FindAll("in");
    desc.output_names = request.FindAll("out");
    for (const auto& [key, value] : request.fields) {
      if (key.rfind("opt.", 0) == 0) {
        desc.option_overrides[key.substr(4)] = value;
      }
    }
    auto id = Submit(desc);
    if (!id.ok()) return ErrorLine(id.status().message());
    response.Add("id", std::to_string(*id));
    return response.Format();
  }
  if (request.verb == "checkin") {
    auto id = HandleCheckin(request, *ctx);
    if (!id.ok()) return ErrorLine(id.status().message());
    response.Add("id", *id);
    return response.Format();
  }
  if (request.verb == "run") {
    auto ran = RunOne();
    if (!ran.ok()) return ErrorLine(ran.status().message());
    response.Add("ran", *ran ? "1" : "0");
    return response.Format();
  }
  if (request.verb == "drain") {
    Status st = Drain();
    if (!st.ok()) return ErrorLine(st.message());
    response.Add("done", std::to_string(queue_->DoneCount()));
    response.Add("failed", std::to_string(queue_->FailedCount()));
    return response.Format();
  }
  if (request.verb == "stat") {
    response.Add("pending", std::to_string(queue_->PendingCount()));
    response.Add("claimed", std::to_string(queue_->ClaimedCount()));
    response.Add("done", std::to_string(queue_->DoneCount()));
    response.Add("failed", std::to_string(queue_->FailedCount()));
    response.Add("depth", std::to_string(queue_->depth()));
    response.Add("recovered", std::to_string(queue_->recovered()));
    storage::CasStats cas = shared_store_->stats();
    response.Add("cas_entries", std::to_string(cas.entries));
    response.Add("cas_blobs", std::to_string(cas.blobs));
    response.Add("cas_bytes", std::to_string(cas.total_bytes));
    response.Add("cas_hits", std::to_string(cas.hits));
    response.Add("cas_misses", std::to_string(cas.misses));
    response.Add("cas_dedup_bytes", std::to_string(cas.dedup_bytes));
    response.Add("cas_live_blobs", std::to_string(cas.live_blobs));
    response.Add("cas_evictable_blobs",
                 std::to_string(cas.evictable_blobs));
    return response.Format();
  }
  if (request.verb == "task") {
    const std::string* id_text = request.Find("id");
    int64_t id = 0;
    if (id_text == nullptr || !ParseInt64(*id_text, &id)) {
      return ErrorLine("task needs a numeric ~id");
    }
    auto task = queue_->Get(id);
    if (!task.ok()) return ErrorLine(task.status().message());
    response.Add("id", std::to_string(task->id));
    response.Add("state", TaskStateName(task->state));
    response.Add("session", task->session);
    response.Add("attempts", std::to_string(task->attempts));
    if (!task->failure.empty()) response.Add("failure", task->failure);
    return response.Format();
  }
  if (request.verb == "sessions") {
    for (const auto& [name, session] : sessions_) {
      response.Add("session", name);
      response.Add("generation",
                   std::to_string(session->generation()));
    }
    return response.Format();
  }
  if (request.verb == "checkpoint") {
    Status st = queue_->Checkpoint();
    if (!st.ok()) return ErrorLine(st.message());
    response.Add("checkpointed", "1");
    return response.Format();
  }
  if (request.verb == "shutdown") {
    Status st = Shutdown();
    if (!st.ok()) return ErrorLine(st.message());
    response.Add("bye", "1");
    return response.Format();
  }
  return ErrorLine("unknown verb \"" + request.verb + "\"");
}

}  // namespace papyrus::server
