#ifndef PAPYRUS_SERVER_DAEMON_H_
#define PAPYRUS_SERVER_DAEMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "base/clock.h"
#include "base/result.h"
#include "base/status.h"
#include "lint/diagnostics.h"
#include "obs/observability.h"
#include "server/queue.h"
#include "server/session_manager.h"
#include "server/transport.h"
#include "server/wire.h"
#include "storage/file_lock.h"

namespace papyrus::server {

/// A seeded, deterministic schedule of daemon crashes for chaos soaks.
/// Each crash point in the daemon's task pipeline draws once from the
/// plan's pseudo-random stream; the plan object outlives daemon
/// incarnations (the harness owns it), so a crash consumed by one
/// incarnation is not re-drawn by the next.
class DaemonCrashPlan {
 public:
  DaemonCrashPlan(uint64_t seed, double crash_rate, int max_crashes);

  /// Fully explicit alternative: fire exactly on these 1-based draw
  /// indices. Lets a test pin a crash to a specific pipeline point
  /// (draws go before_execute, after_execute, after_save per task).
  explicit DaemonCrashPlan(std::vector<int64_t> fire_on_draws);

  /// Draws the next crash decision. At most `max_crashes` fire.
  bool ShouldCrash();

  int crashes_fired() const { return fired_; }
  int64_t draws() const { return draws_; }

 private:
  uint64_t state_ = 0;
  double rate_ = 0.0;
  int max_ = 0;
  std::vector<int64_t> fire_on_draws_;
  int fired_ = 0;
  int64_t draws_ = 0;
};

struct DaemonOptions {
  /// Daemon root: holds `queue/` and `sessions/<name>/`.
  std::string root;
  /// Applied to every hosted session.
  SessionConfig session;
  /// Virtual-time lease granted per claim.
  int64_t lease_micros = 60'000'000;
  /// Claims granted to one task before it is failed permanently.
  int max_task_attempts = 5;
  /// Seeded daemon-crash schedule (chaos soaks). Not owned; may be null.
  DaemonCrashPlan* crash_plan = nullptr;
  /// The daemon's virtual clock (queue timestamps, lease deadlines,
  /// daemon-track trace events). Not owned; pass one clock across
  /// incarnations so a soak's trace stays monotone. Null = the daemon
  /// owns a private clock restored from the queue checkpoint.
  ManualClock* clock = nullptr;
  /// External observability spanning incarnations (soaks). Null = the
  /// daemon owns private sinks, dumped to the paths below at Shutdown.
  obs::TraceRecorder* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  std::string trace_path;
  std::string metrics_path;
  /// Size budget for the daemon's shared content-addressed artifact
  /// store at `<root>/cas` (unique blob bytes; 0 = unlimited). The store
  /// itself is always opened: every hosted session shares it.
  int64_t cas_budget_bytes = 0;
  /// Weighted-round-robin claim order across sessions with pending work
  /// instead of global FIFO; per-session order (and therefore every
  /// snapshot) is identical either way.
  bool fair_dispatch = true;
  /// Max claimed-but-unresolved tasks one session may hold at a time
  /// under fair dispatch (0 = unlimited). Matters when several workers
  /// share the queue.
  int max_inflight_per_session = 0;
  /// Per-session fairness weights (missing = 1): a rotation stop serves
  /// this many tasks before the cursor moves on.
  std::map<std::string, int> dispatch_weights;
  /// Open the queue in shared (multi-process) mode: several `papyrusd
  /// --worker` processes claim from one queue directory, each hosting a
  /// session only while it holds that session's file lock.
  bool shared_queue = false;
  /// Max concurrently hosted sessions (0 = unlimited). Beyond the cap
  /// the least-recently-used idle session is closed — its state is
  /// already durable (every commit saves a snapshot) — so a daemon can
  /// serve 10k sessions without holding 10k engines in memory.
  int max_open_sessions = 0;
};

/// papyrusd: the multi-session Papyrus daemon.
///
/// Hosts many concurrent design sessions (each a full Papyrus engine
/// with its own threads, database, and derivation cache) and feeds them
/// from one crash-surviving persistent task queue. The execution
/// pipeline per task:
///
///   claim (journaled, leased) -> execute in the target session
///   -> persist a session snapshot generation -> journal done
///
/// A crash at any point is recovered on the next Start: unresolved
/// claims re-pend, and the per-session applied-task ledger (persisted
/// inside the snapshot generation) tells whether the task's effects
/// already landed — if so the re-delivery is completed without
/// re-execution. Net effect: at-least-once execution, exactly-once
/// commit, and byte-identical histories with or without crashes.
class PapyrusDaemon {
 public:
  static Result<std::unique_ptr<PapyrusDaemon>> Start(
      const DaemonOptions& options);

  PapyrusDaemon(const PapyrusDaemon&) = delete;
  PapyrusDaemon& operator=(const PapyrusDaemon&) = delete;
  ~PapyrusDaemon();

  /// Journals a task into the queue; durable once this returns.
  Result<int64_t> Submit(const TaskDescription& desc);

  /// Claims and processes one queue task end-to-end. Returns false when
  /// nothing was claimable. When the crash plan fires, the daemon is
  /// dead: the call returns Aborted, in-memory state is abandoned
  /// without saving (that is the crash), and every later call refuses.
  Result<bool> RunOne();

  /// RunOne until the queue has nothing claimable.
  Status Drain();

  /// Shared-queue worker loop: RunOne until the *whole* queue is empty,
  /// cooperating with sibling workers — waits (bounded wall sleeps)
  /// while claimable work is held by others, and nudges virtual time
  /// forward when progress stalls so a dead sibling's leases expire.
  Status WorkerDrain();

  /// Graceful shutdown: queue checkpoint + (when the daemon owns its
  /// sinks) seal and dump trace/metrics. The session snapshots are
  /// already durable — every committed task saved one.
  Status Shutdown();

  /// Handles one wire-protocol request line, returns the response line.
  /// `ctx` is the issuing connection's state (connect/attach live
  /// there); the single-argument form uses a daemon-owned context.
  std::string HandleLine(const std::string& line);
  std::string HandleLine(const std::string& line, ClientContext* ctx);

  /// Opens (or returns the already-open) hosted session.
  Result<ManagedSession*> OpenSession(const std::string& name);

  /// Startup pre-flight: statically re-checks every pending or claimed
  /// task the reopened queue holds (descriptions may come from an older
  /// incarnation or another client) against the session template
  /// library. Report-only — findings fail fast at execution anyway;
  /// papyrusd prints them to stderr before serving.
  std::vector<lint::Diagnostic> PreflightQueue() const;

  PersistentQueue& queue() { return *queue_; }
  /// The daemon-wide shared artifact store (`<root>/cas`), attached to
  /// every hosted session's derivation cache.
  storage::ContentStore& shared_store() { return *shared_store_; }
  ManualClock& clock() { return *clock_; }
  obs::MetricsRegistry* metrics_registry() const { return obs_.metrics; }
  bool crashed() const { return crashed_; }
  bool shut_down() const { return shut_down_; }
  const std::string& owner() const { return owner_; }
  int open_sessions() const { return static_cast<int>(sessions_.size()); }

 private:
  explicit PapyrusDaemon(const DaemonOptions& options);

  /// Draws the crash plan at a pipeline crash point; true = the daemon
  /// just died.
  bool MaybeCrash(const char* point);
  Status CrashStatus(const char* point) const;
  void TraceInstant(const std::string& name,
                    std::vector<obs::TraceArg> args);
  std::string HandleLineImpl(const WireMessage& request,
                             ClientContext* ctx);
  Result<std::string> HandleCheckin(const WireMessage& request,
                                    const ClientContext& ctx);
  ClaimPolicy MakeClaimPolicy();
  /// Shared mode: true when this process may host `name` — we already
  /// hold its session lock, or just took it. False = a sibling hosts it.
  bool EnsureSessionLock(const std::string& name);
  std::string SessionLockPath(const std::string& name) const;
  /// A queue rejection that means "a sibling worker superseded this
  /// lease" rather than a real failure.
  bool BenignSupersession(const Status& status) const;
  void TouchSession(const std::string& name);
  void MaybeEvictSessions(const std::string& keep);

  DaemonOptions options_;
  ManualClock owned_clock_{0};
  ManualClock* clock_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  std::unique_ptr<obs::TraceRecorder> owned_trace_;
  obs::Observability obs_;
  std::string owner_;
  std::unique_ptr<PersistentQueue> queue_;
  // Declared before the sessions so it is destroyed after them (each
  // session's derivation cache holds a raw pointer while attached).
  std::unique_ptr<storage::ContentStore> shared_store_;
  std::map<std::string, std::unique_ptr<ManagedSession>> sessions_;
  /// Shared mode: the session locks this worker holds (hosting rights).
  std::map<std::string, std::unique_ptr<storage::FileLock>> session_locks_;
  /// LRU bookkeeping for max_open_sessions eviction.
  std::map<std::string, int64_t> session_last_used_;
  int64_t session_use_tick_ = 0;
  /// Context behind the single-argument HandleLine (stdin, tests).
  ClientContext default_context_;
  bool crashed_ = false;
  bool shut_down_ = false;

  obs::Counter* c_executed_ = nullptr;
  obs::Counter* c_deduped_ = nullptr;
  obs::Counter* c_restarts_ = nullptr;
  obs::Counter* c_crashes_ = nullptr;
  obs::Counter* c_wire_ = nullptr;
  obs::Gauge* g_sessions_ = nullptr;
  obs::Histogram* h_task_latency_ = nullptr;
};

}  // namespace papyrus::server

#endif  // PAPYRUS_SERVER_DAEMON_H_
