#include "cache/derivation_cache.h"

#include <sstream>

#include "base/strings.h"

namespace papyrus::cache {
namespace {

// Field separator for the key string. Object names are user/tool derived
// and never contain control characters, so \x1f cannot collide.
constexpr char kSep = '\x1f';

}  // namespace

std::string DerivationCache::CanonicalizeOptions(
    const std::string& options,
    const std::vector<std::string>& input_names,
    const std::vector<std::string>& output_names) {
  std::vector<std::string> words = SplitWhitespace(options);
  for (std::string& word : words) {
    bool replaced = false;
    for (size_t i = 0; i < input_names.size() && !replaced; ++i) {
      if (word == input_names[i]) {
        word = "$i" + std::to_string(i);
        replaced = true;
      }
    }
    for (size_t i = 0; i < output_names.size() && !replaced; ++i) {
      if (word == output_names[i]) {
        word = "$o" + std::to_string(i);
        replaced = true;
      }
    }
  }
  return Join(words, " ");
}

std::string DerivationCache::MakeKey(
    const std::string& tool, const std::string& tool_version,
    const std::string& canonical_options, uint64_t seed_salt,
    const std::vector<oct::ObjectId>& inputs) {
  std::ostringstream os;
  os << tool << kSep << tool_version << kSep << canonical_options << kSep
     << std::hex << seed_salt;
  for (const oct::ObjectId& id : inputs) {
    os << kSep << id.name << '@' << std::dec << id.version;
  }
  return os.str();
}

void DerivationCache::set_observability(const obs::Observability& sinks) {
  // Lock-discipline fix: this used to read `stats_` and write the counter
  // mirror pointers without `mu_`, racing with pool-era callers of
  // Probe/Record on another session thread.
  base::MutexLock lock(mu_);
  if (sinks.metrics == nullptr) {
    c_hits_ = c_misses_ = c_recorded_ = c_invalidated_ = c_micros_saved_ =
        nullptr;
    return;
  }
  auto bind = [&sinks](const char* name, int64_t accumulated) {
    obs::Counter* c = sinks.metrics->FindOrCreateCounter(name);
    c->Increment(accumulated - c->value());
    return c;
  };
  c_hits_ = bind(obs::kCacheHits, stats_.hits);
  c_misses_ = bind(obs::kCacheMisses, stats_.misses);
  c_recorded_ = bind(obs::kCacheRecorded, stats_.recorded);
  c_invalidated_ = bind(obs::kCacheInvalidated, stats_.invalidated);
  c_micros_saved_ = bind(obs::kCacheMicrosSaved, stats_.micros_saved);
}

const CacheEntry* DerivationCache::Probe(const std::string& key) {
  base::MutexLock lock(mu_);
  if (!enabled_) return nullptr;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (c_misses_ != nullptr) c_misses_->Increment();
    return nullptr;
  }
  for (const CachedOutput& out : it->second.outputs) {
    auto rec = db_->Peek(out.id);
    bool servable = rec.ok() && !(*rec)->reclaimed &&
                    (!out.visible || (*rec)->visible);
    if (!servable) {
      // A stale entry: something slipped past the invalidation hooks
      // (e.g. a task-level output was later deleted). Treat the probe as
      // the invalidation point.
      DropEntry(key);
      ++stats_.invalidated;
      ++stats_.misses;
      if (c_invalidated_ != nullptr) c_invalidated_->Increment();
      if (c_misses_ != nullptr) c_misses_->Increment();
      return nullptr;
    }
  }
  ++stats_.hits;
  stats_.micros_saved += it->second.cost_micros;
  if (c_hits_ != nullptr) c_hits_->Increment();
  if (c_micros_saved_ != nullptr) {
    c_micros_saved_->Increment(it->second.cost_micros);
  }
  return &it->second;
}

bool DerivationCache::Record(const std::string& key, CacheEntry entry) {
  base::MutexLock lock(mu_);
  return RecordLocked(key, std::move(entry));
}

bool DerivationCache::RecordLocked(const std::string& key,
                                   CacheEntry entry) {
  for (CachedOutput& out : entry.outputs) {
    auto rec = db_->Peek(out.id);
    if (!rec.ok() || (*rec)->reclaimed) return false;
    out.visible = (*rec)->visible;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) DropEntry(key);
  for (const CachedOutput& out : entry.outputs) {
    db_->Pin(out.id);
    by_version_[out.id].insert(key);
  }
  for (const oct::ObjectId& in : entry.inputs) {
    by_version_[in].insert(key);
  }
  entries_.emplace(key, std::move(entry));
  ++stats_.recorded;
  if (c_recorded_ != nullptr) c_recorded_->Increment();
  return true;
}

bool DerivationCache::Restore(CacheEntry entry) {
  // Sequence the key computation before the move: function arguments are
  // indeterminately ordered, so passing MakeKey(entry...) alongside
  // std::move(entry) could read a moved-from entry.
  std::string key = MakeKey(entry.tool, entry.tool_version,
                            entry.canonical_options, entry.seed_salt,
                            entry.inputs);
  base::MutexLock lock(mu_);
  return RecordLocked(key, std::move(entry));
}

void DerivationCache::OnVersionReclaimed(const oct::ObjectId& id) {
  base::MutexLock lock(mu_);
  InvalidateVersionLocked(id);
}

void DerivationCache::InvalidateVersionLocked(const oct::ObjectId& id) {
  auto it = by_version_.find(id);
  if (it == by_version_.end()) return;
  // DropEntry mutates by_version_; detach the key set first.
  std::set<std::string> keys = std::move(it->second);
  by_version_.erase(it);
  for (const std::string& key : keys) {
    DropEntry(key);
    ++stats_.invalidated;
    if (c_invalidated_ != nullptr) c_invalidated_->Increment();
  }
}

void DerivationCache::OnRework(const oct::ObjectId& id) {
  base::MutexLock lock(mu_);
  InvalidateVersionLocked(id);
}

void DerivationCache::Clear() {
  base::MutexLock lock(mu_);
  ClearLocked();
}

void DerivationCache::ClearLocked() {
  while (!entries_.empty()) {
    DropEntry(entries_.begin()->first);
    ++stats_.invalidated;
    if (c_invalidated_ != nullptr) c_invalidated_->Increment();
  }
  by_version_.clear();
}

void DerivationCache::ForEach(
    const std::function<void(const std::string&, const CacheEntry&)>& fn)
    const {
  base::MutexLock lock(mu_);
  for (const auto& [key, entry] : entries_) fn(key, entry);
}

void DerivationCache::DropEntry(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  for (const CachedOutput& out : it->second.outputs) {
    db_->Unpin(out.id);
    auto vit = by_version_.find(out.id);
    if (vit != by_version_.end()) {
      vit->second.erase(key);
      if (vit->second.empty()) by_version_.erase(vit);
    }
  }
  for (const oct::ObjectId& in : it->second.inputs) {
    auto vit = by_version_.find(in);
    if (vit != by_version_.end()) {
      vit->second.erase(key);
      if (vit->second.empty()) by_version_.erase(vit);
    }
  }
  entries_.erase(it);
}

}  // namespace papyrus::cache
