#include "cache/derivation_cache.h"

#include <sstream>

#include "base/hash.h"
#include "base/strings.h"

namespace papyrus::cache {
namespace {

// Field separator for the key string. Object names are user/tool derived
// and never contain control characters, so \x1f cannot collide.
constexpr char kSep = '\x1f';

}  // namespace

std::string DerivationCache::CanonicalizeOptions(
    const std::string& options,
    const std::vector<std::string>& input_names,
    const std::vector<std::string>& output_names) {
  std::vector<std::string> words = SplitWhitespace(options);
  for (std::string& word : words) {
    bool replaced = false;
    for (size_t i = 0; i < input_names.size() && !replaced; ++i) {
      if (word == input_names[i]) {
        word = "$i" + std::to_string(i);
        replaced = true;
      }
    }
    for (size_t i = 0; i < output_names.size() && !replaced; ++i) {
      if (word == output_names[i]) {
        word = "$o" + std::to_string(i);
        replaced = true;
      }
    }
  }
  return Join(words, " ");
}

std::string DerivationCache::MakeKey(
    const std::string& tool, const std::string& tool_version,
    const std::string& canonical_options, uint64_t seed_salt,
    const std::vector<oct::ObjectId>& inputs) {
  std::ostringstream os;
  os << tool << kSep << tool_version << kSep << canonical_options << kSep
     << std::hex << seed_salt;
  for (const oct::ObjectId& id : inputs) {
    os << kSep << id.name << '@' << std::dec << id.version;
  }
  return os.str();
}

std::string DerivationCache::MakeContentKey(
    const std::string& tool, const std::string& tool_version,
    const std::string& canonical_options, uint64_t seed_salt,
    const std::vector<std::string>& input_content_hashes) {
  Sha256 hasher;
  // A format tag versions the key derivation itself: changing how keys
  // are built must never alias entries published by older builds.
  hasher.Update("papyrus-content-key-v1");
  std::ostringstream head;
  head << kSep << tool << kSep << tool_version << kSep << canonical_options
       << kSep << std::hex << seed_salt;
  hasher.Update(head.str());
  for (const std::string& hash : input_content_hashes) {
    hasher.Update(std::string(1, kSep));
    hasher.Update(hash);
  }
  return hasher.FinishHex();
}

void DerivationCache::AttachSharedStore(storage::ContentStore* store,
                                        bool auto_publish, bool probe) {
  base::MutexLock lock(mu_);
  store_ = store;
  auto_publish_ = auto_publish;
  probe_shared_ = probe;
  unpublished_.clear();
}

std::optional<SharedFetch> DerivationCache::ProbeShared(
    const std::string& content_key) {
  storage::ContentStore* store;
  {
    base::MutexLock lock(mu_);
    if (store_ == nullptr || !probe_shared_ || !enabled_ ||
        content_key.empty()) {
      return std::nullopt;
    }
    store = store_;
  }
  // The store locks itself; fetching outside mu_ keeps the cache free for
  // concurrent session threads during blob reads.
  auto fetched = store->Fetch(content_key);
  SharedFetch result;
  bool usable = fetched.ok();
  if (usable) {
    result.cost_micros = fetched->meta.cost_micros;
    for (const storage::CasFetchedOutput& out : fetched->outputs) {
      auto payload = oct::DecodePayloadText(out.bytes);
      if (!payload.ok()) {
        // Verified bytes that no longer decode mean a format skew, not
        // damage; treat as a miss and let the tool re-run.
        usable = false;
        break;
      }
      result.outputs.push_back(
          SharedFetchedOutput{out.name_hint, out.visible,
                              std::move(*payload)});
    }
  }
  base::MutexLock lock(mu_);
  if (!usable) {
    ++stats_.shared_misses;
    return std::nullopt;
  }
  ++stats_.shared_hits;
  stats_.micros_saved += result.cost_micros;
  if (c_micros_saved_ != nullptr) {
    c_micros_saved_->Increment(result.cost_micros);
  }
  return result;
}

void DerivationCache::PublishSharedLocked(const CacheEntry& entry) {
  if (store_ == nullptr || entry.content_key.empty()) return;
  storage::CasEntryMeta meta;
  meta.tool = entry.tool;
  meta.tool_version = entry.tool_version;
  meta.canonical_options = entry.canonical_options;
  meta.seed_salt = entry.seed_salt;
  meta.cost_micros = entry.cost_micros;
  std::vector<storage::CasPublishOutput> outputs;
  outputs.reserve(entry.outputs.size());
  for (const CachedOutput& out : entry.outputs) {
    auto rec = db_->Peek(out.id);
    if (!rec.ok() || (*rec)->reclaimed) return;  // no longer publishable
    storage::CasPublishOutput pub;
    pub.name_hint = out.id.name;
    pub.visible = out.visible;
    pub.bytes = oct::EncodePayloadText((*rec)->payload);
    outputs.push_back(std::move(pub));
  }
  (void)store_->Publish(entry.content_key, meta, outputs);
}

void DerivationCache::FlushSharedPublications() {
  base::MutexLock lock(mu_);
  if (store_ == nullptr) {
    unpublished_.clear();
    return;
  }
  for (const std::string& key : unpublished_) {
    auto it = entries_.find(key);
    if (it != entries_.end()) PublishSharedLocked(it->second);
  }
  unpublished_.clear();
}

void DerivationCache::set_observability(const obs::Observability& sinks) {
  // Lock-discipline fix: this used to read `stats_` and write the counter
  // mirror pointers without `mu_`, racing with pool-era callers of
  // Probe/Record on another session thread.
  base::MutexLock lock(mu_);
  if (sinks.metrics == nullptr) {
    c_hits_ = c_misses_ = c_recorded_ = c_invalidated_ = c_micros_saved_ =
        nullptr;
    return;
  }
  auto bind = [&sinks](const char* name, int64_t accumulated) {
    obs::Counter* c = sinks.metrics->FindOrCreateCounter(name);
    c->Increment(accumulated - c->value());
    return c;
  };
  c_hits_ = bind(obs::kCacheHits, stats_.hits);
  c_misses_ = bind(obs::kCacheMisses, stats_.misses);
  c_recorded_ = bind(obs::kCacheRecorded, stats_.recorded);
  c_invalidated_ = bind(obs::kCacheInvalidated, stats_.invalidated);
  c_micros_saved_ = bind(obs::kCacheMicrosSaved, stats_.micros_saved);
}

const CacheEntry* DerivationCache::Probe(const std::string& key) {
  base::MutexLock lock(mu_);
  if (!enabled_) return nullptr;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    if (c_misses_ != nullptr) c_misses_->Increment();
    return nullptr;
  }
  for (const CachedOutput& out : it->second.outputs) {
    auto rec = db_->Peek(out.id);
    bool servable = rec.ok() && !(*rec)->reclaimed &&
                    (!out.visible || (*rec)->visible);
    if (!servable) {
      // A stale entry: something slipped past the invalidation hooks
      // (e.g. a task-level output was later deleted). Treat the probe as
      // the invalidation point.
      DropEntry(key);
      ++stats_.invalidated;
      ++stats_.misses;
      if (c_invalidated_ != nullptr) c_invalidated_->Increment();
      if (c_misses_ != nullptr) c_misses_->Increment();
      return nullptr;
    }
  }
  ++stats_.hits;
  stats_.micros_saved += it->second.cost_micros;
  if (c_hits_ != nullptr) c_hits_->Increment();
  if (c_micros_saved_ != nullptr) {
    c_micros_saved_->Increment(it->second.cost_micros);
  }
  return &it->second;
}

bool DerivationCache::Record(const std::string& key, CacheEntry entry) {
  base::MutexLock lock(mu_);
  return RecordLocked(key, std::move(entry));
}

bool DerivationCache::RecordLocked(const std::string& key,
                                   CacheEntry entry) {
  for (CachedOutput& out : entry.outputs) {
    auto rec = db_->Peek(out.id);
    if (!rec.ok() || (*rec)->reclaimed) return false;
    out.visible = (*rec)->visible;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) DropEntry(key);
  for (const CachedOutput& out : entry.outputs) {
    db_->Pin(out.id);
    by_version_[out.id].insert(key);
  }
  for (const oct::ObjectId& in : entry.inputs) {
    by_version_[in].insert(key);
  }
  auto [inserted, ok] = entries_.emplace(key, std::move(entry));
  TouchPut(key);
  ++stats_.recorded;
  if (c_recorded_ != nullptr) c_recorded_->Increment();
  if (store_ != nullptr && !inserted->second.content_key.empty()) {
    if (auto_publish_) {
      // Standalone session: commit is this process's durability point, so
      // the derivation becomes shareable immediately.
      PublishSharedLocked(inserted->second);
    } else {
      // Daemon session: hold publication until the snapshot carrying this
      // entry durably lands (FlushSharedPublications), so a crash cannot
      // leak outputs of a commit that never survived.
      unpublished_.insert(key);
    }
  }
  return true;
}

bool DerivationCache::Restore(CacheEntry entry) {
  // Sequence the key computation before the move: function arguments are
  // indeterminately ordered, so passing MakeKey(entry...) alongside
  // std::move(entry) could read a moved-from entry.
  std::string key = MakeKey(entry.tool, entry.tool_version,
                            entry.canonical_options, entry.seed_salt,
                            entry.inputs);
  base::MutexLock lock(mu_);
  return RecordLocked(key, std::move(entry));
}

void DerivationCache::OnVersionReclaimed(const oct::ObjectId& id) {
  base::MutexLock lock(mu_);
  InvalidateVersionLocked(id);
}

void DerivationCache::InvalidateVersionLocked(const oct::ObjectId& id) {
  auto it = by_version_.find(id);
  if (it == by_version_.end()) return;
  // DropEntry mutates by_version_; detach the key set first.
  std::set<std::string> keys = std::move(it->second);
  by_version_.erase(it);
  for (const std::string& key : keys) {
    DropEntry(key);
    ++stats_.invalidated;
    if (c_invalidated_ != nullptr) c_invalidated_->Increment();
  }
}

void DerivationCache::OnRework(const oct::ObjectId& id) {
  base::MutexLock lock(mu_);
  InvalidateVersionLocked(id);
}

void DerivationCache::Clear() {
  base::MutexLock lock(mu_);
  ClearLocked();
}

void DerivationCache::ClearLocked() {
  while (!entries_.empty()) {
    DropEntry(entries_.begin()->first);
    ++stats_.invalidated;
    if (c_invalidated_ != nullptr) c_invalidated_->Increment();
  }
  by_version_.clear();
}

void DerivationCache::ForEach(
    const std::function<void(const std::string&, const CacheEntry&)>& fn)
    const {
  base::MutexLock lock(mu_);
  for (const auto& [key, entry] : entries_) fn(key, entry);
}

void DerivationCache::TouchPut(const std::string& key) {
  ++seq_;
  if (wal_put_set_.insert(key).second) wal_put_keys_.push_back(key);
}

void DerivationCache::TouchRemoved(const std::string& key) {
  ++seq_;
  if (wal_removed_set_.insert(key).second) wal_removed_keys_.push_back(key);
}

bool DerivationCache::HasWalDirt() const {
  base::MutexLock lock(mu_);
  return !wal_put_keys_.empty() || !wal_removed_keys_.empty();
}

void DerivationCache::DrainWalDirt(
    const std::function<void(const std::string&)>& removed_fn,
    const std::function<void(const std::string&, const CacheEntry&)>&
        upsert_fn) {
  base::MutexLock lock(mu_);
  for (const std::string& key : wal_removed_keys_) removed_fn(key);
  for (const std::string& key : wal_put_keys_) {
    auto it = entries_.find(key);
    // Put-then-dropped keys are covered by their removal record alone.
    if (it != entries_.end()) upsert_fn(key, it->second);
  }
  wal_put_keys_.clear();
  wal_put_set_.clear();
  wal_removed_keys_.clear();
  wal_removed_set_.clear();
}

void DerivationCache::DiscardWalDirt() {
  base::MutexLock lock(mu_);
  wal_put_keys_.clear();
  wal_put_set_.clear();
  wal_removed_keys_.clear();
  wal_removed_set_.clear();
}

void DerivationCache::ForgetEntry(const std::string& key) {
  base::MutexLock lock(mu_);
  DropEntry(key);
}

void DerivationCache::DropEntry(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  TouchRemoved(key);
  for (const CachedOutput& out : it->second.outputs) {
    db_->Unpin(out.id);
    auto vit = by_version_.find(out.id);
    if (vit != by_version_.end()) {
      vit->second.erase(key);
      if (vit->second.empty()) by_version_.erase(vit);
    }
  }
  for (const oct::ObjectId& in : it->second.inputs) {
    auto vit = by_version_.find(in);
    if (vit != by_version_.end()) {
      vit->second.erase(key);
      if (vit->second.empty()) by_version_.erase(vit);
    }
  }
  unpublished_.erase(key);
  entries_.erase(it);
}

}  // namespace papyrus::cache
