#ifndef PAPYRUS_CACHE_DERIVATION_CACHE_H_
#define PAPYRUS_CACHE_DERIVATION_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "obs/observability.h"
#include "oct/database.h"
#include "oct/design_data.h"
#include "oct/object_id.h"
#include "storage/cas.h"

namespace papyrus::cache {

/// One output version recorded by a cached derivation, together with its
/// visibility at commit time: a version that was visible then was a
/// task-level output, an invisible one was a discarded intermediate. A hit
/// requires task-level outputs to *still* be visible (a later deletion is
/// a rework signal), while intermediates only need to exist un-reclaimed —
/// they are rematerialized (made visible again) for the reusing task.
struct CachedOutput {
  oct::ObjectId id;
  bool visible = true;
};

/// One memoized design step: the full cache key components plus the
/// recorded outcome. Keeping the components (not just the derived key)
/// makes entries self-describing for persistence and diagnostics.
struct CacheEntry {
  std::string tool;
  std::string tool_version;
  /// Option string with the actual input/output object names replaced by
  /// positional placeholders ($i<k>/$o<k>), so per-execution intermediate
  /// name decoration does not defeat matching across task runs.
  std::string canonical_options;
  /// Deterministic seed component of the invocation (base invocation seed
  /// mixed with scope/step-name/canonical-options), part of the key: two
  /// invocations that would feed different seeds to the tool are
  /// different derivations.
  uint64_t seed_salt = 0;
  std::vector<oct::ObjectId> inputs;  // ordered, as dispatched
  std::vector<CachedOutput> outputs;  // recorded committed versions
  /// Virtual execution cost of the original run (completion - dispatch);
  /// credited to `micros_saved` on every hit.
  int64_t cost_micros = 0;
  int64_t recorded_micros = 0;  // commit time of the recording task
  /// Session-independent content-addressed key: SHA-256 over the tool
  /// identity, canonical options, seed salt, and the *content hashes* of
  /// the inputs (not their session-local version numbers). The same step
  /// derives the same content_key in any session, for any user, across
  /// daemon restarts — it is what the shared store is keyed by. Empty when
  /// content hashing was unavailable (an entry restored from a v2
  /// cache.pdc, or one rebuilt from a shared-store hit, which the store
  /// already holds).
  std::string content_key;
};

/// Counters exposed through the task manager and the shell `cache`
/// command.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t recorded = 0;     // entries added (or replaced) at task commit
  int64_t invalidated = 0;  // entries dropped by reclamation/rework/clear
  int64_t micros_saved = 0;  // summed virtual cost of elided steps
  /// Shared-store fallthrough, counted per session (the attached
  /// ContentStore keeps its own global papyrus.cas.* counters):
  int64_t shared_hits = 0;    // session misses served by the shared store
  int64_t shared_misses = 0;  // fallthroughs that found nothing there
};

/// One output rebuilt from a shared-store hit: the decoded payload plus
/// the naming/visibility metadata needed to bind it into this session's
/// OCT namespace as a fresh version.
struct SharedFetchedOutput {
  std::string name_hint;
  bool visible = true;
  oct::DesignPayload payload;
};

/// A verified, decoded shared-store hit.
struct SharedFetch {
  int64_t cost_micros = 0;  // virtual cost the hit elides
  std::vector<SharedFetchedOutput> outputs;
};

/// The history-based derivation cache (the tentpole of this change): a
/// content-addressed index over committed history, keyed by
/// (tool, tool version, canonicalized options, seed salt, ordered input
/// versions) and mapping to the recorded output versions.
///
/// Population happens only at task commit — aborted tasks and superseded
/// restart attempts never pollute the cache. Every recorded output
/// version is pinned in the database so background reclamation cannot
/// silently free a payload the cache might serve; the reclamation manager
/// notifies the cache first (`OnVersionReclaimed`), which drops the
/// affected entries and releases the pins. Explicit rework that erases
/// history (`ActivityManager::MoveCursor` with erase) likewise invalidates
/// through `OnRework`.
///
/// Thread contract: lookups and mutations are serialized by the internal
/// `mu_` (all cached state is PAPYRUS_GUARDED_BY(mu_)), so concurrent
/// readers (e.g. threads sharing a session while the engine runs with a
/// worker pool) are safe. Entry points that reach into the OctDatabase
/// (pinning, visibility peeks) additionally carry
/// PAPYRUS_REQUIRES(base::engine_thread): the database is engine-owned,
/// and under the parallel step executor the engine thread remains the
/// only caller — probes happen at dispatch, population at commit, both
/// engine-side. The pointer returned by `Probe` is only valid until the
/// next mutating call, so callers must consume it before re-entering the
/// cache.
class DerivationCache {
 public:
  explicit DerivationCache(oct::OctDatabase* db) : db_(db) {
    base::AssertEngineThread("DerivationCache::DerivationCache");
    // Direct Reclaim callers (not just the reclamation manager) must also
    // invalidate: the database calls back when it hits a pinned version.
    // Reclaim is engine-only, so the handler runs on the engine thread.
    db_->set_pinned_reclaim_handler([this](const oct::ObjectId& id) {
      base::AssertEngineThread("DerivationCache pinned-reclaim handler");
      OnVersionReclaimed(id);
    });
  }

  DerivationCache(const DerivationCache&) = delete;
  DerivationCache& operator=(const DerivationCache&) = delete;

  ~DerivationCache() {
    // Vouch locally instead of annotating the destructor: REQUIRES on a
    // dtor would propagate into every owner's (often implicit) dtor.
    base::AssertEngineThread("DerivationCache::~DerivationCache");
    {
      base::MutexLock lock(mu_);
      ClearLocked();
    }
    db_->set_pinned_reclaim_handler(nullptr);
  }

  // --- key derivation ----------------------------------------------------

  /// Replaces every option word equal to an actual input/output object
  /// name with its positional placeholder ($i<k>/$o<k>).
  static std::string CanonicalizeOptions(
      const std::string& options,
      const std::vector<std::string>& input_names,
      const std::vector<std::string>& output_names);

  /// Builds the session-local key string from its components (inputs by
  /// session version number).
  static std::string MakeKey(const std::string& tool,
                             const std::string& tool_version,
                             const std::string& canonical_options,
                             uint64_t seed_salt,
                             const std::vector<oct::ObjectId>& inputs);

  /// Builds the session-independent shared-store key: SHA-256 over the
  /// tool identity, options, salt, and the input payloads' content hashes
  /// (ordered as dispatched).
  static std::string MakeContentKey(
      const std::string& tool, const std::string& tool_version,
      const std::string& canonical_options, uint64_t seed_salt,
      const std::vector<std::string>& input_content_hashes);

  // --- shared store ------------------------------------------------------

  /// Attaches (or detaches, with nullptr) a shared content-addressed
  /// store. Session-cache misses then fall through to it, and committed
  /// derivations are published into it.
  ///
  ///  - `auto_publish` (standalone sessions): Record() publishes
  ///    immediately — a commit is this process's durability point.
  ///  - `!auto_publish` (papyrusd): entries queue as unpublished until
  ///    FlushSharedPublications(), which the daemon calls only after the
  ///    session snapshot durably landed. Publishing after — never before —
  ///    the snapshot keeps crashy and crash-free runs byte-identical: a
  ///    task that re-runs after a crash sees exactly the store its
  ///    durably-committed predecessors built, nothing more.
  ///  - `probe`: when false the store is write-through only (published to,
  ///    never fetched from) — used by benches/CI to re-derive content
  ///    independently and measure deduplication.
  void AttachSharedStore(storage::ContentStore* store, bool auto_publish,
                         bool probe = true)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  storage::ContentStore* shared_store() const PAPYRUS_EXCLUDES(mu_) {
    base::MutexLock lock(mu_);
    return store_;
  }

  /// Probes the shared store for `content_key` and decodes the payloads.
  /// Returns nullopt — and the caller just runs the tool — when no store
  /// is attached, probing is disabled, the key is absent, blob
  /// verification failed (the store drops the damaged entry itself), or
  /// payload decoding failed. Never returns unverified bytes.
  std::optional<SharedFetch> ProbeShared(const std::string& content_key)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  /// Publishes every entry recorded while auto_publish was off. The
  /// daemon calls this right after its durable session save.
  void FlushSharedPublications()
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  // --- lookup ------------------------------------------------------------

  /// Returns the entry for `key` when present and still servable: every
  /// recorded output exists un-reclaimed, and outputs that were visible at
  /// commit are still visible. Counts a hit (crediting `micros_saved`) or
  /// a miss. Returns nullptr without counting when the cache is disabled.
  /// The returned pointer is invalidated by any mutating call.
  const CacheEntry* Probe(const std::string& key)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  // --- population --------------------------------------------------------

  /// Records one committed derivation under `key`, replacing any previous
  /// entry. Snapshots each output's current visibility and pins the
  /// output versions. Returns false (and records nothing) when an output
  /// version does not exist in the database.
  bool Record(const std::string& key, CacheEntry entry)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  /// Re-inserts a persisted entry (the key is recomputed from the entry's
  /// own components). Used by snapshot restore.
  bool Restore(CacheEntry entry)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  // --- invalidation ------------------------------------------------------

  /// A version is about to be physically reclaimed: drop every entry that
  /// mentions it (as input provenance or output) and release its pins.
  void OnVersionReclaimed(const oct::ObjectId& id)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  /// Explicit rework erased the history that produced `id`: the design
  /// point is re-opened, so derivations through it must re-execute.
  void OnRework(const oct::ObjectId& id)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  /// Drops every entry (counts them as invalidated).
  void Clear() PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  // --- control / introspection -------------------------------------------

  /// A disabled cache misses every probe (uncounted) but still accepts
  /// recordings, so re-enabling serves the history accumulated meanwhile.
  void set_enabled(bool enabled) PAPYRUS_EXCLUDES(mu_) {
    base::MutexLock lock(mu_);
    enabled_ = enabled;
  }
  bool enabled() const PAPYRUS_EXCLUDES(mu_) {
    base::MutexLock lock(mu_);
    return enabled_;
  }

  /// Returns a consistent snapshot of the counters. By value: `stats_` is
  /// guarded by `mu_`, so handing out a reference would let callers read
  /// it unlocked.
  CacheStats stats() const PAPYRUS_EXCLUDES(mu_) {
    base::MutexLock lock(mu_);
    return stats_;
  }
  size_t size() const PAPYRUS_EXCLUDES(mu_) {
    base::MutexLock lock(mu_);
    return entries_.size();
  }

  /// Mirrors the cache statistics into the registry's papyrus.cache.*
  /// counters, catching the mirror up with whatever already accumulated.
  /// The registry must outlive the cache (the destructor's Clear() still
  /// counts invalidations).
  void set_observability(const obs::Observability& obs) PAPYRUS_EXCLUDES(mu_);

  /// Visits every entry (persistence, shell rendering).
  void ForEach(
      const std::function<void(const std::string& key, const CacheEntry&)>&
          fn) const PAPYRUS_EXCLUDES(mu_);

  // --- storage-engine hooks ----------------------------------------------

  /// Monotonic counter of cache mutations (delta-snapshot dirtiness).
  uint64_t mutation_seq() const PAPYRUS_EXCLUDES(mu_) {
    base::MutexLock lock(mu_);
    return seq_;
  }

  /// True when entries changed since the last drain/discard.
  bool HasWalDirt() const PAPYRUS_EXCLUDES(mu_);

  /// Visits the removals then the surviving dirtied entries accumulated
  /// since the last drain (first-dirtied order), then clears both lists.
  /// Replay applies removals before upserts, so a replace (drop + put of
  /// one key) reconstructs correctly.
  void DrainWalDirt(
      const std::function<void(const std::string& key)>& removed_fn,
      const std::function<void(const std::string& key,
                               const CacheEntry& entry)>& upsert_fn)
      PAPYRUS_EXCLUDES(mu_);

  /// Clears the dirty lists without visiting (after restore/replay).
  void DiscardWalDirt() PAPYRUS_EXCLUDES(mu_);

  /// WAL replay of a journaled removal: drops the entry (releasing pins)
  /// without counting an invalidation. Missing keys are a no-op.
  void ForgetEntry(const std::string& key)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

 private:
  // Internal bodies, caller holds `mu_` (and the engine role, for the
  // database pin/unpin side effects): they never take the lock
  // themselves, so paths that compose them (Restore -> Record, probe
  // invalidation -> drop) stay recursion-free.
  void DropEntry(const std::string& key)
      PAPYRUS_REQUIRES(mu_, base::engine_thread);
  void TouchPut(const std::string& key) PAPYRUS_REQUIRES(mu_);
  void TouchRemoved(const std::string& key) PAPYRUS_REQUIRES(mu_);
  bool RecordLocked(const std::string& key, CacheEntry entry)
      PAPYRUS_REQUIRES(mu_, base::engine_thread);
  /// Encodes the entry's output payloads (read from the database) and
  /// publishes them under entry.content_key. No-op for entries without a
  /// content key or outputs that are no longer readable.
  void PublishSharedLocked(const CacheEntry& entry)
      PAPYRUS_REQUIRES(mu_, base::engine_thread);
  void InvalidateVersionLocked(const oct::ObjectId& id)
      PAPYRUS_REQUIRES(mu_, base::engine_thread);
  void ClearLocked() PAPYRUS_REQUIRES(mu_, base::engine_thread);

  /// Serializes every public entry point (see the class thread contract).
  mutable base::Mutex mu_;
  oct::OctDatabase* db_;
  bool enabled_ PAPYRUS_GUARDED_BY(mu_) = true;
  CacheStats stats_ PAPYRUS_GUARDED_BY(mu_);
  obs::Counter* c_hits_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_misses_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_recorded_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_invalidated_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_micros_saved_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  std::map<std::string, CacheEntry> entries_ PAPYRUS_GUARDED_BY(mu_);
  /// Inverted index: object version -> keys of entries mentioning it
  /// (inputs and outputs), driving O(entries-touched) invalidation.
  std::map<oct::ObjectId, std::set<std::string>> by_version_
      PAPYRUS_GUARDED_BY(mu_);

  /// Shared content-addressed store (not owned; may be nullptr).
  storage::ContentStore* store_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  bool auto_publish_ PAPYRUS_GUARDED_BY(mu_) = true;
  bool probe_shared_ PAPYRUS_GUARDED_BY(mu_) = true;
  /// Session keys recorded while auto_publish was off, awaiting
  /// FlushSharedPublications (the daemon's post-snapshot publish point).
  std::set<std::string> unpublished_ PAPYRUS_GUARDED_BY(mu_);

  // Storage-engine dirty state (first-dirtied order, deduplicated).
  uint64_t seq_ PAPYRUS_GUARDED_BY(mu_) = 0;
  std::vector<std::string> wal_put_keys_ PAPYRUS_GUARDED_BY(mu_);
  std::set<std::string> wal_put_set_ PAPYRUS_GUARDED_BY(mu_);
  std::vector<std::string> wal_removed_keys_ PAPYRUS_GUARDED_BY(mu_);
  std::set<std::string> wal_removed_set_ PAPYRUS_GUARDED_BY(mu_);
};

}  // namespace papyrus::cache

#endif  // PAPYRUS_CACHE_DERIVATION_CACHE_H_
