#ifndef PAPYRUS_OBS_TRACE_H_
#define PAPYRUS_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/clock.h"
#include "base/status.h"
#include "base/thread_annotations.h"

namespace papyrus::obs {

/// Fixed Chrome-trace "process" ids: tracks group under them in
/// Perfetto / chrome://tracing.
///  - kHostTrackPid: the Sprite network, one thread-track per host
///    (migrations, evictions, crashes, reboots, load counters);
///  - kSessionPid: session-scoped events (OCT version allocation,
///    snapshot save/load spans, the session-end marker);
///  - kServerPid: daemon-scoped events (queue enqueue/claim/complete
///    instants, per-task execution spans, recovery scans, shutdown
///    drain) — spans daemon incarnations when the harness passes one
///    recorder across restarts;
///  - kTaskPidBase + execution id: one process-group per design task,
///    thread 0 carrying the task span and one thread per step internal
///    id carrying that step's dispatch..completion spans.
inline constexpr int kHostTrackPid = 1;
inline constexpr int kSessionPid = 2;
inline constexpr int kServerPid = 3;
inline constexpr int kTaskPidBase = 10;

/// One key/value pair attached to a trace event's `args`. `raw` values
/// are emitted verbatim (numbers, booleans); others are JSON-escaped
/// strings.
struct TraceArg {
  std::string key;
  std::string value;
  bool raw = false;

  static TraceArg Str(std::string key, std::string value) {
    return TraceArg{std::move(key), std::move(value), false};
  }
  static TraceArg Int(std::string key, int64_t value) {
    return TraceArg{std::move(key), std::to_string(value), true};
  }
  static TraceArg Bool(std::string key, bool value) {
    return TraceArg{std::move(key), value ? "true" : "false", true};
  }
};

/// One Chrome `trace_event`. `ph` phases used: B/E (duration begin/end),
/// i (instant), C (counter), M (metadata: process_name/thread_name).
struct TraceEvent {
  char ph = 'i';
  std::string name;
  std::string cat;
  int64_t ts = 0;  // virtual microseconds
  int pid = 0;
  int64_t tid = 0;
  std::vector<TraceArg> args;
};

/// Records structured events keyed on *virtual time* and serializes them
/// in Chrome trace_event JSON object format, loadable in Perfetto and
/// chrome://tracing. Timestamps come from the session's virtual clock,
/// so a trace is a deterministic replay artifact, not a wall-time
/// profile.
///
/// Thread contract: the recorder's state is engine-thread-only — every
/// mutating call carries PAPYRUS_REQUIRES(base::engine_thread), with one
/// carve-out: `Instant` called on a step-executor worker (a thread with
/// an EffectCapture installed, see obs/effect_capture.h) buffers the
/// event instead of touching recorder state; the engine replays it at the
/// step's virtual completion event, where serial execution would have
/// emitted it. (Metrics, by contrast, are thread-safe; see metrics.h.)
///
/// Lifecycle: disabled recorders drop events silently and for free.
/// `Seal()` marks the end of the session; events recorded after it are
/// dropped and counted (`dropped_events`), which is what guarantees the
/// "zero events after session end" trace invariant that
/// tools/check_trace.py asserts.
class TraceRecorder {
 public:
  explicit TraceRecorder(const Clock* clock) : clock_(clock) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_enabled(bool enabled) PAPYRUS_REQUIRES(base::engine_thread) {
    enabled_ = enabled;
  }
  bool enabled() const { return enabled_; }
  bool sealed() const { return sealed_; }

  /// Labels a Chrome process / thread track. Idempotent per target.
  void SetProcessName(int pid, const std::string& name)
      PAPYRUS_REQUIRES(base::engine_thread);
  void SetThreadName(int pid, int64_t tid, const std::string& name)
      PAPYRUS_REQUIRES(base::engine_thread);

  /// Opens a duration span on (pid, tid). Spans on one track must nest;
  /// the recorder remembers the open-name stack so End emits the
  /// matching name.
  void Begin(int pid, int64_t tid, const std::string& name,
             const std::string& cat, std::vector<TraceArg> args = {})
      PAPYRUS_REQUIRES(base::engine_thread);
  /// Closes the innermost open span on (pid, tid); no-op when none is
  /// open (e.g. the span's Begin predated `trace start`).
  void End(int pid, int64_t tid, std::vector<TraceArg> args = {})
      PAPYRUS_REQUIRES(base::engine_thread);
  /// The one worker-callable recording API (deliberately NOT
  /// engine-annotated): with an EffectCapture installed the event is
  /// buffered capture-side, otherwise it lands directly in the recorder.
  void Instant(int pid, int64_t tid, const std::string& name,
               const std::string& cat, std::vector<TraceArg> args = {});
  /// Chrome counter event (`ph: "C"`): one named series per (pid, name).
  void CounterValue(int pid, int64_t tid, const std::string& name,
                    int64_t value) PAPYRUS_REQUIRES(base::engine_thread);

  /// Emits the session-end marker and seals the recorder.
  void Finish() PAPYRUS_REQUIRES(base::engine_thread);

  size_t event_count() const { return events_.size(); }
  int64_t dropped_events() const { return dropped_; }
  /// Open B spans across all tracks (0 once every span closed).
  int64_t open_spans() const;
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Drops all recorded events and name stacks (keeps enabled/sealed
  /// state).
  void Clear() PAPYRUS_REQUIRES(base::engine_thread);

  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  bool ShouldRecord();
  void Push(TraceEvent event);

  const Clock* clock_;
  bool enabled_ = false;
  bool sealed_ = false;
  int64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  /// Open-span name stacks, per (pid, tid).
  std::map<std::pair<int, int64_t>, std::vector<std::string>> open_;
  /// Tracks already labeled, to keep metadata idempotent.
  std::map<std::pair<int, int64_t>, std::string> named_;
};

}  // namespace papyrus::obs

#endif  // PAPYRUS_OBS_TRACE_H_
