#include "obs/trace.h"

#include <fstream>
#include <sstream>

#include "obs/effect_capture.h"

namespace papyrus::obs {

namespace {

/// Minimal JSON string escaping: the event vocabulary is engine-generated
/// (step names, tool options, host ids), but option strings may carry
/// quotes or backslashes.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Metadata pseudo-track key for process-level names (tid is irrelevant
/// for process_name events).
constexpr int64_t kProcessNameTid = -1;

}  // namespace

bool TraceRecorder::ShouldRecord() {
  if (!enabled_) return false;
  if (sealed_) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceRecorder::Push(TraceEvent event) {
  event.ts = clock_->NowMicros();
  events_.push_back(std::move(event));
}

void TraceRecorder::SetProcessName(int pid, const std::string& name) {
  if (!ShouldRecord()) return;
  auto key = std::make_pair(pid, kProcessNameTid);
  auto it = named_.find(key);
  if (it != named_.end() && it->second == name) return;
  named_[key] = name;
  TraceEvent ev;
  ev.ph = 'M';
  ev.name = "process_name";
  ev.pid = pid;
  ev.tid = 0;
  ev.args.push_back(TraceArg::Str("name", name));
  Push(std::move(ev));
}

void TraceRecorder::SetThreadName(int pid, int64_t tid,
                                  const std::string& name) {
  if (!ShouldRecord()) return;
  auto key = std::make_pair(pid, tid);
  auto it = named_.find(key);
  if (it != named_.end() && it->second == name) return;
  named_[key] = name;
  TraceEvent ev;
  ev.ph = 'M';
  ev.name = "thread_name";
  ev.pid = pid;
  ev.tid = tid;
  ev.args.push_back(TraceArg::Str("name", name));
  Push(std::move(ev));
}

void TraceRecorder::Begin(int pid, int64_t tid, const std::string& name,
                          const std::string& cat,
                          std::vector<TraceArg> args) {
  if (!ShouldRecord()) return;
  open_[{pid, tid}].push_back(name);
  TraceEvent ev;
  ev.ph = 'B';
  ev.name = name;
  ev.cat = cat;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  Push(std::move(ev));
}

void TraceRecorder::End(int pid, int64_t tid,
                        std::vector<TraceArg> args) {
  if (!ShouldRecord()) return;
  auto it = open_.find({pid, tid});
  if (it == open_.end() || it->second.empty()) return;
  TraceEvent ev;
  ev.ph = 'E';
  ev.name = it->second.back();
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  it->second.pop_back();
  if (it->second.empty()) open_.erase(it);
  Push(std::move(ev));
}

void TraceRecorder::Instant(int pid, int64_t tid, const std::string& name,
                            const std::string& cat,
                            std::vector<TraceArg> args) {
  // On a step-executor worker (EffectCapture installed), defer the whole
  // emission: the recorder's state — including `enabled_` and the clock —
  // is engine-thread-only, and serial execution would stamp this instant
  // at the step's virtual completion event anyway. The engine replays it
  // through this same path (capture-free) at that event.
  if (EffectCapture* capture = CurrentEffectCapture()) {
    capture->AddInstant({this, pid, tid, name, cat, std::move(args)});
    return;
  }
  if (!ShouldRecord()) return;
  TraceEvent ev;
  ev.ph = 'i';
  ev.name = name;
  ev.cat = cat;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  Push(std::move(ev));
}

void TraceRecorder::CounterValue(int pid, int64_t tid,
                                 const std::string& name, int64_t value) {
  if (!ShouldRecord()) return;
  TraceEvent ev;
  ev.ph = 'C';
  ev.name = name;
  ev.pid = pid;
  ev.tid = tid;
  ev.args.push_back(TraceArg::Int("value", value));
  Push(std::move(ev));
}

void TraceRecorder::Finish() {
  if (sealed_) return;
  if (enabled_) {
    Instant(kSessionPid, 0, "papyrus.session.end", "session");
  }
  sealed_ = true;
}

int64_t TraceRecorder::open_spans() const {
  int64_t n = 0;
  for (const auto& [track, stack] : open_) {
    n += static_cast<int64_t>(stack.size());
  }
  return n;
}

void TraceRecorder::Clear() {
  events_.clear();
  open_.clear();
  named_.clear();
  dropped_ = 0;
}

std::string TraceRecorder::ToJson() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& ev = events_[i];
    os << "{\"ph\": \"" << ev.ph << "\", \"name\": \""
       << JsonEscape(ev.name) << "\"";
    if (!ev.cat.empty()) {
      os << ", \"cat\": \"" << JsonEscape(ev.cat) << "\"";
    }
    // Metadata events are timeless; pin them to 0 so viewers sort them
    // ahead of the timeline.
    os << ", \"ts\": " << (ev.ph == 'M' ? 0 : ev.ts)
       << ", \"pid\": " << ev.pid << ", \"tid\": " << ev.tid;
    if (!ev.args.empty()) {
      os << ", \"args\": {";
      for (size_t a = 0; a < ev.args.size(); ++a) {
        if (a > 0) os << ", ";
        os << "\"" << JsonEscape(ev.args[a].key) << "\": ";
        if (ev.args[a].raw) {
          os << ev.args[a].value;
        } else {
          os << "\"" << JsonEscape(ev.args[a].value) << "\"";
        }
      }
      os << "}";
    }
    os << "}" << (i + 1 < events_.size() ? "," : "") << "\n";
  }
  os << "]}\n";
  return os.str();
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write trace to " + path);
  out << ToJson();
  out.flush();
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

}  // namespace papyrus::obs
