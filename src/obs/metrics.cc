#include "obs/metrics.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace papyrus::obs {

namespace {

constexpr MetricType kC = MetricType::kCounter;
constexpr MetricType kG = MetricType::kGauge;
constexpr MetricType kH = MetricType::kHistogram;

const char* TypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

const std::vector<MetricInfo>& MetricCatalogue() {
  static const std::vector<MetricInfo> catalogue = {
      {kStepsCompleted, kC,
       "Design steps whose tool run exited 0 (cache hits excluded)."},
      {kStepsFailed, kC,
       "Design steps surfaced to the template with a non-zero exit."},
      {kStepsRetried, kC,
       "Environmental re-dispatches after host crashes or transient "
       "tool failures."},
      {kStepsLost, kC,
       "Step processes killed mid-run by a workstation crash."},
      {kStepsElided, kC,
       "Steps served from the derivation cache instead of running the "
       "tool."},
      {kStepVirtualLatency, kH,
       "Virtual microseconds from step dispatch to completion "
       "(executed steps only)."},
      {kStepRetryBackoff, kH,
       "Virtual microseconds of exponential backoff preceding each "
       "environmental re-dispatch."},
      {kTasksCommitted, kC, "Task invocations that ran to commit."},
      {kTasksAborted, kC,
       "Task invocations undone by abort (template abort, failure, or "
       "deadlock)."},
      {kTaskRestarts, kC,
       "Programmable-abort restarts across all invocations."},
      {kFlowViolations, kC,
       "Runtime flow-checker violations: dispatches contradicting the "
       "static happens-before graph. Zero on a healthy engine."},
      {kCacheHits, kC, "Derivation-cache probes served from history."},
      {kCacheMisses, kC, "Derivation-cache probes that found no entry."},
      {kCacheRecorded, kC,
       "Derivations recorded (or replaced) at task commit."},
      {kCacheInvalidated, kC,
       "Cache entries dropped by reclamation, rework, or clear."},
      {kCacheMicrosSaved, kC,
       "Summed virtual execution cost of elided steps."},
      {kSpriteSpawns, kC, "Processes started on the workstation network."},
      {kSpriteMigrations, kC, "Successful process migrations."},
      {kSpriteMigrationFailures, kC,
       "Migrate calls that failed under flaky-migration injection."},
      {kSpriteEvictions, kC,
       "Foreign processes pushed home by a returning owner."},
      {kSpriteRemigrations, kC,
       "Task-manager re-migrations of processes stuck on the home "
       "node."},
      {kSpriteCrashes, kC, "Workstation crashes."},
      {kSpriteReboots, kC, "Workstation reboots after a crash."},
      {kSpriteLostProcesses, kC, "Processes that died in a host crash."},
      {kOctVersionsCreated, kC,
       "Design-object versions allocated by the OCT database."},
      {kOctReclaimed, kC,
       "Versions whose payload was physically reclaimed."},
      {kOctLiveBytes, kG,
       "Payload bytes of all non-reclaimed versions."},
      {kFaultTransientInjections, kC,
       "Tool runs turned into transient failures by the fault plan."},
      {kSnapshotSaves, kC, "Session snapshots written."},
      {kSnapshotLoads, kC, "Session snapshots restored."},
      {kSnapshotGenerations, kC,
       "Compacted delta-snapshot generations committed (manifest "
       "swaps)."},
      {kSnapshotSectionsWritten, kC,
       "Section files rewritten because their shard was dirty."},
      {kSnapshotSectionsReused, kC,
       "Clean section files carried into a generation by reference."},
      {kSnapshotFilesPruned, kC,
       "Unreferenced section/manifest files removed after a manifest "
       "swap."},
      {kWalRecords, kC,
       "Mutation records appended to the write-ahead log."},
      {kWalCommits, kC,
       "WAL group commits (one durability barrier per batch; empty "
       "batches are free)."},
      {kWalSyncs, kC, "fsync calls issued by WAL commits."},
      {kWalBytesWritten, kC, "Bytes appended to the write-ahead log."},
      {kWalResets, kC,
       "WAL rotations after a snapshot generation absorbed its tail."},
      {kWalReplayedRecords, kC,
       "Journal records replayed on top of sections at recovery."},
      {kWalTruncatedBytes, kC,
       "Torn-tail bytes discarded by longest-valid-prefix recovery."},
      {kAttributesComputed, kC,
       "Attribute measurements computed by invoking a measurement "
       "tool."},
      {kAttributesCached, kC,
       "Attribute queries served from the attribute store."},
      {kTraceEventsDropped, kC,
       "Trace events dropped because the recorder was sealed or "
       "disabled mid-session."},
      {kQueueDepth, kG,
       "Tasks in the persistent queue not yet done or failed (pending + "
       "claimed)."},
      {kQueueEnqueued, kC,
       "Tasks journaled into the persistent queue."},
      {kQueueClaimed, kC,
       "Claims granted: a pending task handed to a session under a "
       "virtual-time lease."},
      {kQueueCompleted, kC,
       "Tasks marked done after their commit and snapshot landed."},
      {kQueueFailed, kC,
       "Tasks marked permanently failed (attempt budget exhausted)."},
      {kQueueRequeued, kC,
       "Claimed tasks returned to pending (execution error or explicit "
       "release) before their lease expired."},
      {kQueueLeaseExpired, kC,
       "Leases reaped by the expiry scan: the claim outlived its "
       "deadline and the task went back to pending."},
      {kQueueRecovered, kC,
       "Claimed-but-not-done tasks re-enqueued while replaying the "
       "journal at daemon startup."},
      {kQueueCheckpoints, kC,
       "Atomic queue checkpoints written (journal compactions)."},
      {kQueueWaitLatency, kH,
       "Virtual microseconds a task spent in the queue from enqueue to "
       "the claim that committed it."},
      {kQueueFairnessRotations, kC,
       "Weighted-round-robin cursor rotations: the fair claim policy "
       "moved on to serve a different session."},
      {kQueueFairnessCapped, kC,
       "Sessions passed over by the fair claim policy because they "
       "already had max_inflight_per_session tasks claimed."},
      {kQueueFairnessActiveSessions, kG,
       "Sessions with pending work observed by the last fair claim."},
      {kServerSessionsOpen, kG,
       "Design sessions currently hosted by the daemon."},
      {kServerTasksExecuted, kC,
       "Queue tasks the daemon actually ran to commit (dedup hits "
       "excluded)."},
      {kServerTasksDeduped, kC,
       "Queue tasks skipped because the applied-task ledger showed "
       "their effects already committed (at-least-once delivery, "
       "exactly-once commit)."},
      {kServerRestarts, kC,
       "Daemon incarnations beyond the first observed by a shared "
       "metrics registry (crash-restart recoveries)."},
      {kServerCrashesInjected, kC,
       "Daemon crashes injected by a seeded crash plan during a soak."},
      {kServerWireRequests, kC,
       "Wire-protocol request lines handled (including errors)."},
      {kServerTaskLatency, kH,
       "Virtual microseconds from claim to commit for tasks the daemon "
       "executed."},
      {kServerClientsConnected, kG,
       "Wire clients currently connected to the daemon socket "
       "transport (stdin counts as one when attached)."},
      {kServerClientsTotal, kC,
       "Wire client connections accepted over the daemon's lifetime."},
      {kServerClientsDisconnected, kC,
       "Wire client connections closed, including abrupt disconnects "
       "mid-request."},
      {kServerClientsRejectedLines, kC,
       "Wire lines rejected by the transport before dispatch "
       "(oversized or unterminated at disconnect)."},
      {kCasHits, kC,
       "Shared-store fetches that returned hash-verified outputs "
       "(cross-session derivation-cache hits)."},
      {kCasMisses, kC,
       "Shared-store fetches that found no entry for the content key."},
      {kCasPublished, kC,
       "New entries accepted into the content-addressed store."},
      {kCasDedupBytes, kC,
       "Blob bytes NOT written because identical content already lived "
       "in the store (cross-entry and cross-session sharing)."},
      {kCasBytesWritten, kC,
       "Blob bytes physically written to the store."},
      {kCasEvictedEntries, kC,
       "Entries evicted by the LRU size-budget policy."},
      {kCasEvictedBytes, kC,
       "Unique blob bytes freed by eviction (shared blobs survive "
       "until their last referencing entry goes)."},
      {kCasVerifyFailures, kC,
       "Blobs whose bytes no longer matched their SHA-256 at fetch "
       "time; the damaged entry is dropped and the step re-runs."},
      {kCasOrphansCollected, kC,
       "Crash-orphaned blob files garbage-collected at store open."},
      {kCasNegHits, kC,
       "Shared-store lookups short-circuited by the negative-entry "
       "cache (known-absent keys skip the disk probe)."},
      {kCasEntries, kG, "Entries currently in the shared store."},
      {kCasBlobs, kG, "Unique blobs currently in the shared store."},
      {kCasStoreBytes, kG,
       "Summed unique blob bytes currently on disk."},
      {kExecWorkers, kG,
       "Worker threads configured for the parallel step executor (1 = "
       "serial engine-thread execution)."},
      {kExecStepsPool, kC,
       "Tool payloads executed speculatively on a worker-pool thread."},
      {kExecStepsInline, kC,
       "Tool payloads executed inline on the engine thread (serial mode, "
       "or stolen at the completion event before a worker picked them "
       "up)."},
      {kExecQueueDepth, kH,
       "Commit-funnel depth at each virtual completion event: "
       "speculative results still awaiting their engine-thread commit."},
      {kExecWallLatency, kH,
       "Wall-clock microseconds a tool payload spent executing "
       "(worker or inline), as opposed to its virtual cost."},
  };
  return catalogue;
}

const std::vector<int64_t>& LatencyBucketBounds() {
  // Virtual microseconds; tool costs in the simulator span roughly
  // 1ms..5s of virtual time.
  static const std::vector<int64_t> bounds = {
      1'000,     5'000,      10'000,     50'000,     100'000,
      250'000,   500'000,    1'000'000,  2'500'000,  5'000'000,
      10'000'000};
  return bounds;
}

const std::vector<int64_t>& QueueDepthBucketBounds() {
  // Pending commits at a completion event: small integers, bounded by
  // the number of concurrently in-flight steps.
  static const std::vector<int64_t> bounds = {0, 1, 2, 4, 8, 16, 32, 64};
  return bounds;
}

const std::vector<int64_t>& WallLatencyBucketBounds() {
  // Wall-clock microseconds; in-process tool payloads run in the
  // 10us..1s range depending on payload size and injected sleeps.
  static const std::vector<int64_t> bounds = {
      10,      50,      100,     500,       1'000,     5'000,    10'000,
      50'000,  100'000, 500'000, 1'000'000, 5'000'000};
  return bounds;
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void Histogram::Observe(int64_t value) {
  size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
               bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

// Bucket edges for a catalogue histogram. Latency-in-virtual-micros is
// the default; depth and wall-clock histograms carry their own scales.
const std::vector<int64_t>& CatalogueBounds(const std::string& name) {
  if (name == kExecQueueDepth) return QueueDepthBucketBounds();
  if (name == kExecWallLatency) return WallLatencyBucketBounds();
  return LatencyBucketBounds();
}

}  // namespace

MetricsRegistry::MetricsRegistry() {
  for (const MetricInfo& info : MetricCatalogue()) {
    switch (info.type) {
      case MetricType::kCounter:
        FindOrCreateCounter(info.name);
        break;
      case MetricType::kGauge:
        FindOrCreateGauge(info.name);
        break;
      case MetricType::kHistogram:
        FindOrCreateHistogram(info.name, CatalogueBounds(info.name));
        break;
    }
  }
}

Counter* MetricsRegistry::FindOrCreateCounter(const std::string& name) {
  base::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::FindOrCreateGauge(const std::string& name) {
  base::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::FindOrCreateHistogram(
    const std::string& name, std::vector<int64_t> bounds) {
  base::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::string MetricsRegistry::ToJson() const {
  base::MutexLock lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": " << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"" << name
       << "\": " << g->value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\n"
       << "      \"buckets\": [";
    const std::vector<int64_t>& bounds = h->bounds();
    std::vector<int64_t> counts = h->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      if (i < bounds.size()) {
        os << bounds[i];
      } else {
        os << "\"+Inf\"";
      }
      os << ", \"count\": " << counts[i] << "}";
    }
    os << "],\n      \"sum\": " << h->sum()
       << ",\n      \"count\": " << h->count() << "\n    }";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

std::string MetricsRegistry::ToTable() const {
  base::MutexLock lock(mu_);
  std::ostringstream os;
  size_t width = 0;
  for (const auto& [name, c] : counters_) width = std::max(width,
                                                           name.size());
  for (const auto& [name, g] : gauges_) width = std::max(width,
                                                         name.size());
  for (const auto& [name, h] : histograms_) width = std::max(width,
                                                             name.size());
  for (const auto& [name, c] : counters_) {
    os << std::left << std::setw(static_cast<int>(width) + 2) << name
       << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << std::left << std::setw(static_cast<int>(width) + 2) << name
       << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << std::left << std::setw(static_cast<int>(width) + 2) << name
       << "count=" << h->count() << " sum=" << h->sum() << "\n";
  }
  return os.str();
}

// Referenced by papyrus-metrics --catalogue.
const char* MetricTypeName(MetricType t) { return TypeName(t); }

}  // namespace papyrus::obs
