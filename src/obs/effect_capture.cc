#include "obs/effect_capture.h"

#include "obs/metrics.h"

namespace papyrus::obs {

namespace {
thread_local EffectCapture* g_current_capture = nullptr;
}  // namespace

EffectCapture* CurrentEffectCapture() { return g_current_capture; }

void SetCurrentEffectCapture(EffectCapture* capture) {
  g_current_capture = capture;
}

void EffectCapture::Replay() {
  for (auto& [counter, delta] : counters_) counter->Increment(delta);
  for (auto& [cell, delta] : raws_) *cell += delta;
  for (auto& instant : instants_) {
    if (instant.recorder != nullptr) {
      instant.recorder->Instant(instant.pid, instant.tid, instant.name,
                                instant.cat, instant.args);
    }
  }
  Drop();
}

void EffectCapture::Drop() {
  counters_.clear();
  raws_.clear();
  instants_.clear();
}

void CountRaw(int64_t* cell, int64_t delta) {
  if (EffectCapture* capture = CurrentEffectCapture()) {
    capture->AddRaw(cell, delta);
    return;
  }
  *cell += delta;
}

}  // namespace papyrus::obs
