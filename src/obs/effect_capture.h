#ifndef PAPYRUS_OBS_EFFECT_CAPTURE_H_
#define PAPYRUS_OBS_EFFECT_CAPTURE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/thread_annotations.h"
#include "obs/trace.h"

namespace papyrus::obs {

class Counter;

/// A per-job buffer for observability side effects produced while a tool
/// payload runs on a step-executor worker thread (task/step_executor.h).
///
/// The parallel step executor runs `Tool::Run` speculatively, ahead of the
/// step's virtual completion event. Side effects a run emits — counter
/// increments, trace instants, raw statistic bumps (e.g. the fault plan's
/// injection count) — must not land when the worker happens to execute,
/// for two reasons:
///  - ordering: serial execution emits them at the completion event, and
///    byte-identical traces/statistics require the same placement;
///  - thread safety: the trace recorder and plain statistic cells are
///    engine-thread-only.
///
/// So while a worker runs a job, a thread-local capture is installed
/// (`SetCurrentEffectCapture`); `Counter::Increment`,
/// `TraceRecorder::Instant`, and `CountRaw` divert into it instead of
/// applying. The engine thread replays the buffer at the job's virtual
/// completion event (`Replay`) — or drops it when the step was killed,
/// lost, or unwound, matching serial execution where the tool never ran.
///
/// The engine thread never has a capture installed, so direct calls (and
/// replay itself) apply immediately. Worker-side code may only emit
/// *instants*; spans and track metadata remain engine-only.
class EffectCapture {
 public:
  /// One deferred TraceRecorder::Instant. The timestamp is assigned at
  /// replay time (the virtual completion event), exactly where serial
  /// execution would have stamped it.
  struct PendingInstant {
    TraceRecorder* recorder;
    int pid;
    int64_t tid;
    std::string name;
    std::string cat;
    std::vector<TraceArg> args;
  };

  void AddCounter(Counter* counter, int64_t delta) {
    counters_.emplace_back(counter, delta);
  }
  void AddRaw(int64_t* cell, int64_t delta) {
    raws_.emplace_back(cell, delta);
  }
  void AddInstant(PendingInstant instant) {
    instants_.push_back(std::move(instant));
  }

  /// Applies every buffered effect in emission order and clears the
  /// buffer. Engine thread only (no capture may be installed).
  void Replay() PAPYRUS_REQUIRES(base::engine_thread);

  /// Discards every buffered effect (killed / lost / unwound step).
  void Drop();

  bool empty() const {
    return counters_.empty() && raws_.empty() && instants_.empty();
  }

 private:
  std::vector<std::pair<Counter*, int64_t>> counters_;
  std::vector<std::pair<int64_t*, int64_t>> raws_;
  std::vector<PendingInstant> instants_;
};

/// The capture installed on the calling thread, or nullptr (the engine
/// thread, or a worker between jobs).
EffectCapture* CurrentEffectCapture();

/// Installs (or clears, with nullptr) the calling thread's capture. Owned
/// by the step executor; the capture must outlive the installation.
void SetCurrentEffectCapture(EffectCapture* capture);

/// Increments a plain (non-atomic, engine-owned) statistic cell: diverted
/// into the current capture when one is installed, applied directly
/// otherwise. Lets engine-owned plain counters (e.g. the fault plan's
/// injection count) stay race-free under speculative execution.
void CountRaw(int64_t* cell, int64_t delta);

}  // namespace papyrus::obs

#endif  // PAPYRUS_OBS_EFFECT_CAPTURE_H_
