#ifndef PAPYRUS_OBS_METRICS_H_
#define PAPYRUS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "obs/effect_capture.h"

namespace papyrus::obs {

/// A monotonically increasing counter. Increments are lock-free
/// (relaxed atomics); reads see a consistent point-in-time value.
///
/// When the calling thread has an EffectCapture installed (a step-executor
/// worker running a speculative tool payload), the increment is buffered
/// there and applied on the engine thread at the step's virtual completion
/// event, keeping counter values byte-identical to serial execution.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    if (EffectCapture* capture = CurrentEffectCapture()) {
      capture->AddCounter(this, delta);
      return;
    }
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A value that can move both ways (live bytes, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram: `bounds` are inclusive upper bucket edges in
/// ascending order; observations above the last edge land in the implicit
/// overflow bucket. Observe is lock-free; Snapshot (bucket counts + sum +
/// count) is read without stopping writers, so under concurrent writes it
/// is a near-point-in-time view, never a torn one.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void Observe(int64_t value);

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// One count per bound, plus the trailing overflow bucket.
  std::vector<int64_t> BucketCounts() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<int64_t> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// One entry of the stable metric-name catalogue: the contract between
/// the engine, the exporters, and CI assertions. Names never change
/// meaning once shipped; new metrics are appended.
struct MetricInfo {
  const char* name;
  MetricType type;
  const char* help;
};

/// The full catalogue, in export order. `papyrus-metrics --catalogue`
/// renders it as a markdown table (docs/METRICS.md).
const std::vector<MetricInfo>& MetricCatalogue();

/// "counter" / "gauge" / "histogram".
const char* MetricTypeName(MetricType t);

/// Bucket edges (virtual microseconds) shared by the latency histograms.
const std::vector<int64_t>& LatencyBucketBounds();

/// Bucket edges for small-integer depth histograms (commit-funnel queue
/// depth observed at each virtual completion event).
const std::vector<int64_t>& QueueDepthBucketBounds();

/// Bucket edges (wall-clock microseconds) for real executor latencies.
const std::vector<int64_t>& WallLatencyBucketBounds();

// Catalogue names, usable as constants at instrumentation points.
inline constexpr char kStepsCompleted[] = "papyrus.steps.completed";
inline constexpr char kStepsFailed[] = "papyrus.steps.failed";
inline constexpr char kStepsRetried[] = "papyrus.steps.retried";
inline constexpr char kStepsLost[] = "papyrus.steps.lost";
inline constexpr char kStepsElided[] = "papyrus.steps.elided";
inline constexpr char kStepVirtualLatency[] =
    "papyrus.step.virtual_latency";
inline constexpr char kStepRetryBackoff[] = "papyrus.step.retry_backoff";
inline constexpr char kTasksCommitted[] = "papyrus.tasks.committed";
inline constexpr char kTasksAborted[] = "papyrus.tasks.aborted";
inline constexpr char kTaskRestarts[] = "papyrus.tasks.restarts";
inline constexpr char kFlowViolations[] = "papyrus.flow.violations";
inline constexpr char kCacheHits[] = "papyrus.cache.hits";
inline constexpr char kCacheMisses[] = "papyrus.cache.misses";
inline constexpr char kCacheRecorded[] = "papyrus.cache.recorded";
inline constexpr char kCacheInvalidated[] = "papyrus.cache.invalidated";
inline constexpr char kCacheMicrosSaved[] = "papyrus.cache.micros_saved";
inline constexpr char kSpriteSpawns[] = "papyrus.sprite.spawns";
inline constexpr char kSpriteMigrations[] = "papyrus.sprite.migrations";
inline constexpr char kSpriteMigrationFailures[] =
    "papyrus.sprite.migration_failures";
inline constexpr char kSpriteEvictions[] = "papyrus.sprite.evictions";
inline constexpr char kSpriteRemigrations[] =
    "papyrus.sprite.remigrations";
inline constexpr char kSpriteCrashes[] = "papyrus.sprite.crashes";
inline constexpr char kSpriteReboots[] = "papyrus.sprite.reboots";
inline constexpr char kSpriteLostProcesses[] =
    "papyrus.sprite.lost_processes";
inline constexpr char kOctVersionsCreated[] =
    "papyrus.oct.versions_created";
inline constexpr char kOctReclaimed[] = "papyrus.oct.reclaimed";
inline constexpr char kOctLiveBytes[] = "papyrus.oct.live_bytes";
inline constexpr char kFaultTransientInjections[] =
    "papyrus.fault.transient_injections";
inline constexpr char kSnapshotSaves[] = "papyrus.snapshot.saves";
inline constexpr char kSnapshotLoads[] = "papyrus.snapshot.loads";
inline constexpr char kSnapshotGenerations[] =
    "papyrus.snapshot.generations";
inline constexpr char kSnapshotSectionsWritten[] =
    "papyrus.snapshot.sections_written";
inline constexpr char kSnapshotSectionsReused[] =
    "papyrus.snapshot.sections_reused";
inline constexpr char kSnapshotFilesPruned[] =
    "papyrus.snapshot.files_pruned";
inline constexpr char kWalRecords[] = "papyrus.wal.records";
inline constexpr char kWalCommits[] = "papyrus.wal.commits";
inline constexpr char kWalSyncs[] = "papyrus.wal.syncs";
inline constexpr char kWalBytesWritten[] = "papyrus.wal.bytes_written";
inline constexpr char kWalResets[] = "papyrus.wal.resets";
inline constexpr char kWalReplayedRecords[] =
    "papyrus.wal.replayed_records";
inline constexpr char kWalTruncatedBytes[] =
    "papyrus.wal.truncated_bytes";
inline constexpr char kAttributesComputed[] =
    "papyrus.attributes.computed";
inline constexpr char kAttributesCached[] = "papyrus.attributes.cached";
inline constexpr char kTraceEventsDropped[] =
    "papyrus.trace.events_dropped";
inline constexpr char kQueueDepth[] = "papyrus.queue.depth";
inline constexpr char kQueueEnqueued[] = "papyrus.queue.enqueued";
inline constexpr char kQueueClaimed[] = "papyrus.queue.claimed";
inline constexpr char kQueueCompleted[] = "papyrus.queue.completed";
inline constexpr char kQueueFailed[] = "papyrus.queue.failed";
inline constexpr char kQueueRequeued[] = "papyrus.queue.requeued";
inline constexpr char kQueueLeaseExpired[] =
    "papyrus.queue.lease_expired";
inline constexpr char kQueueRecovered[] = "papyrus.queue.recovered";
inline constexpr char kQueueCheckpoints[] = "papyrus.queue.checkpoints";
inline constexpr char kQueueWaitLatency[] = "papyrus.queue.wait_latency";
inline constexpr char kQueueFairnessRotations[] =
    "papyrus.queue.fairness_rotations";
inline constexpr char kQueueFairnessCapped[] =
    "papyrus.queue.fairness_capped";
inline constexpr char kQueueFairnessActiveSessions[] =
    "papyrus.queue.fairness_active_sessions";
inline constexpr char kServerSessionsOpen[] =
    "papyrus.server.sessions_open";
inline constexpr char kServerTasksExecuted[] =
    "papyrus.server.tasks_executed";
inline constexpr char kServerTasksDeduped[] =
    "papyrus.server.tasks_deduped";
inline constexpr char kServerRestarts[] = "papyrus.server.restarts";
inline constexpr char kServerCrashesInjected[] =
    "papyrus.server.crashes_injected";
inline constexpr char kServerWireRequests[] =
    "papyrus.server.wire_requests";
inline constexpr char kServerTaskLatency[] =
    "papyrus.server.task_latency";
inline constexpr char kServerClientsConnected[] =
    "papyrus.server.clients_connected";
inline constexpr char kServerClientsTotal[] =
    "papyrus.server.clients_total";
inline constexpr char kServerClientsDisconnected[] =
    "papyrus.server.clients_disconnected";
inline constexpr char kServerClientsRejectedLines[] =
    "papyrus.server.clients_rejected_lines";
inline constexpr char kCasHits[] = "papyrus.cas.hits";
inline constexpr char kCasMisses[] = "papyrus.cas.misses";
inline constexpr char kCasPublished[] = "papyrus.cas.published";
inline constexpr char kCasDedupBytes[] = "papyrus.cas.dedup_bytes";
inline constexpr char kCasBytesWritten[] = "papyrus.cas.bytes_written";
inline constexpr char kCasEvictedEntries[] =
    "papyrus.cas.evicted_entries";
inline constexpr char kCasEvictedBytes[] = "papyrus.cas.evicted_bytes";
inline constexpr char kCasVerifyFailures[] =
    "papyrus.cas.verify_failures";
inline constexpr char kCasOrphansCollected[] =
    "papyrus.cas.orphans_collected";
inline constexpr char kCasNegHits[] = "papyrus.cas.neg_hits";
inline constexpr char kCasEntries[] = "papyrus.cas.entries";
inline constexpr char kCasBlobs[] = "papyrus.cas.blobs";
inline constexpr char kCasStoreBytes[] = "papyrus.cas.store_bytes";
inline constexpr char kExecWorkers[] = "papyrus.exec.workers";
inline constexpr char kExecStepsPool[] = "papyrus.exec.steps_pool";
inline constexpr char kExecStepsInline[] = "papyrus.exec.steps_inline";
inline constexpr char kExecQueueDepth[] = "papyrus.exec.queue_depth";
inline constexpr char kExecWallLatency[] = "papyrus.exec.wall_latency";

/// The metrics registry: owns every metric instance, hands out stable
/// pointers, and snapshots the lot as JSON or a human table.
///
/// Thread contract: `FindOrCreate*` and the exporters serialize on the
/// internal `mu_` (the name->instance maps are PAPYRUS_GUARDED_BY(mu_));
/// increments through the returned pointers are lock-free and safe from
/// any thread. Returned pointers live as long as the registry.
class MetricsRegistry {
 public:
  /// Pre-registers the entire catalogue so exports always carry every
  /// stable name, zero-valued when untouched.
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* FindOrCreateCounter(const std::string& name)
      PAPYRUS_EXCLUDES(mu_);
  Gauge* FindOrCreateGauge(const std::string& name) PAPYRUS_EXCLUDES(mu_);
  /// `bounds` applies only on first creation; a later call with different
  /// bounds returns the existing histogram unchanged.
  Histogram* FindOrCreateHistogram(const std::string& name,
                                   std::vector<int64_t> bounds)
      PAPYRUS_EXCLUDES(mu_);

  /// Point-in-time export of every metric, names sorted, as JSON:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const PAPYRUS_EXCLUDES(mu_);
  /// The same snapshot as an aligned human-readable table.
  std::string ToTable() const PAPYRUS_EXCLUDES(mu_);

 private:
  mutable base::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PAPYRUS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PAPYRUS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PAPYRUS_GUARDED_BY(mu_);
};

}  // namespace papyrus::obs

#endif  // PAPYRUS_OBS_METRICS_H_
