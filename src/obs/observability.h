#ifndef PAPYRUS_OBS_OBSERVABILITY_H_
#define PAPYRUS_OBS_OBSERVABILITY_H_

#include "obs/metrics.h"
#include "obs/trace.h"

namespace papyrus::obs {

/// The observability context handed to every instrumented subsystem: a
/// trace recorder for the event timeline and a metrics registry for the
/// counters/gauges/histograms catalogue. Either pointer may be null —
/// instrumentation points must null-check (a bare TaskManager outside a
/// Papyrus session still works, it is just unobserved). Not owned.
struct Observability {
  TraceRecorder* trace = nullptr;
  MetricsRegistry* metrics = nullptr;
};

}  // namespace papyrus::obs

#endif  // PAPYRUS_OBS_OBSERVABILITY_H_
