#ifndef PAPYRUS_FAULT_FAULT_PLAN_H_
#define PAPYRUS_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "base/status.h"
#include "cadtools/registry.h"
#include "obs/observability.h"
#include "sprite/network.h"

namespace papyrus::fault {

/// Knobs for one reproducible chaos scenario. All probabilities are in
/// [0, 1); all draws derive from `seed`, so the same options against the
/// same workload produce the identical fault schedule in virtual time.
struct FaultPlanOptions {
  uint64_t seed = 1;
  /// Probability that a given host crashes within the horizon.
  double host_crash_rate = 0.0;
  /// Window (from the current virtual time) in which crashes land.
  int64_t horizon_micros = 10'000'000;
  /// Crash-to-reboot delay. 0 means crashed hosts stay down forever.
  int64_t reboot_delay_micros = 500'000;
  /// Crash/reboot cycles a single host may go through.
  int max_crashes_per_host = 1;
  /// Never crash host 0 (the Papyrus session's home machine). The task
  /// manager treats the home host as the fallback executor, so crashing it
  /// models a full-session outage rather than workstation churn.
  bool spare_home = true;
  /// Probability that any individual Migrate call fails (process stays
  /// put). Forwarded to Network::SetMigrationFlakiness.
  double migration_flakiness = 0.0;
  /// Probability that any individual tool run fails transiently
  /// (EX_TEMPFAIL) instead of executing. Applied by wrapping every
  /// registered tool. The decision is a pure function of (plan seed,
  /// tool, invocation seed, attempt): deterministic at any worker-pool
  /// size, and each retry attempt draws fresh.
  double tool_transient_rate = 0.0;
};

/// One scheduled host crash (and optional reboot), for inspection.
struct ScheduledCrash {
  sprite::HostId host = sprite::kNoHost;
  int64_t crash_micros = 0;
  int64_t reboot_micros = 0;  // 0 = never
};

/// A seeded chaos plan: derives a deterministic schedule of host crashes
/// and reboots, enables flaky migration, and wraps the tool registry so a
/// seeded fraction of tool runs fail transiently. Apply once, before
/// driving the workload; the same seed yields the same chaos.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanOptions options);

  /// Schedules crashes/reboots on `network` (relative to its current
  /// virtual time) and, when `tools` is non-null and the transient rate is
  /// positive, wraps every registered tool with the transient-failure
  /// injector. Call at most once per plan.
  Status Apply(sprite::Network* network, cadtools::ToolRegistry* tools);

  const std::vector<ScheduledCrash>& scheduled_crashes() const {
    return crashes_;
  }
  /// Tool runs turned into transient failures so far (grows as the
  /// workload executes).
  int64_t transient_injections() const { return *transient_injections_; }

  /// Attaches trace + metrics sinks: each injected transient failure bumps
  /// papyrus.fault.transient_injections and emits a session-track instant.
  /// The sinks are shared with the installed tool wrappers, so this works
  /// before or after Apply.
  void set_observability(const obs::Observability& obs);

 private:
  FaultPlanOptions options_;
  bool applied_ = false;
  std::vector<ScheduledCrash> crashes_;
  std::shared_ptr<int64_t> transient_injections_;
  std::shared_ptr<obs::Observability> sinks_;
};

}  // namespace papyrus::fault

#endif  // PAPYRUS_FAULT_FAULT_PLAN_H_
