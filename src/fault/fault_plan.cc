#include "fault/fault_plan.h"

#include <algorithm>
#include <utility>

#include "base/macros.h"
#include "base/thread_annotations.h"
#include "base/strings.h"
#include "cadtools/tool.h"
#include "obs/effect_capture.h"

namespace papyrus::fault {

namespace {

/// SplitMix64: tiny, well-distributed PRNG for reproducible chaos.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double NextUnit(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) *
         (1.0 / 9007199254740992.0);  // 2^53
}

bool ValidProbability(double p) { return p >= 0.0 && p < 1.0; }

}  // namespace

FaultPlan::FaultPlan(FaultPlanOptions options)
    : options_(options),
      transient_injections_(std::make_shared<int64_t>(0)),
      sinks_(std::make_shared<obs::Observability>()) {}

void FaultPlan::set_observability(const obs::Observability& sinks) {
  base::AssertEngineThread("FaultPlan::set_observability");
  *sinks_ = sinks;
  if (sinks_->trace != nullptr) {
    sinks_->trace->SetThreadName(obs::kSessionPid, /*tid=*/2,
                                 "fault injector");
  }
}

Status FaultPlan::Apply(sprite::Network* network,
                        cadtools::ToolRegistry* tools) {
  if (applied_) {
    return Status::FailedPrecondition("fault plan already applied");
  }
  if (network == nullptr) {
    return Status::InvalidArgument("fault plan needs a network");
  }
  if (!ValidProbability(options_.host_crash_rate) ||
      !ValidProbability(options_.migration_flakiness) ||
      !ValidProbability(options_.tool_transient_rate)) {
    return Status::InvalidArgument(
        "fault probabilities must be in [0, 1)");
  }
  if (options_.horizon_micros <= 0) {
    return Status::InvalidArgument("fault horizon must be positive");
  }
  applied_ = true;

  // --- host crash/reboot schedule --------------------------------------
  uint64_t crash_state = options_.seed ^ 0x6372617368706c6eull;
  int64_t now = network->clock()->NowMicros();
  for (sprite::HostId host = 0; host < network->num_hosts(); ++host) {
    if (options_.spare_home && host == network->home_host()) continue;
    int64_t earliest = now + 1;
    for (int cycle = 0; cycle < options_.max_crashes_per_host; ++cycle) {
      if (NextUnit(&crash_state) >= options_.host_crash_rate) break;
      int64_t span = now + options_.horizon_micros - earliest;
      if (span <= 0) break;
      ScheduledCrash crash;
      crash.host = host;
      crash.crash_micros =
          earliest + static_cast<int64_t>(NextUnit(&crash_state) * span);
      PAPYRUS_RETURN_IF_ERROR(
          network->ScheduleCrash(host, crash.crash_micros));
      if (options_.reboot_delay_micros > 0) {
        crash.reboot_micros =
            crash.crash_micros + options_.reboot_delay_micros;
        PAPYRUS_RETURN_IF_ERROR(
            network->RebootHost(host, crash.reboot_micros));
      }
      crashes_.push_back(crash);
      if (crash.reboot_micros == 0) break;  // down forever: no next cycle
      earliest = crash.reboot_micros + 1;
    }
  }

  // --- flaky migration --------------------------------------------------
  if (options_.migration_flakiness > 0.0) {
    PAPYRUS_RETURN_IF_ERROR(network->SetMigrationFlakiness(
        options_.migration_flakiness, options_.seed));
  }

  // --- transient tool failures ------------------------------------------
  if (tools != nullptr && options_.tool_transient_rate > 0.0) {
    for (const std::string& name : tools->ToolNames()) {
      auto found = tools->Find(name);
      if (!found.ok()) continue;
      // The registry owns (and will destroy) the wrapped tool when the
      // injector is registered under the same name, so keep a copy alive
      // inside the wrapper.
      auto inner = std::make_shared<cadtools::Tool>(**found);
      // The injection decision is a pure function of (plan seed, tool,
      // invocation seed, attempt): no shared draw state, so the wrapper
      // is race-free on executor workers and the decision is independent
      // of the order in which concurrent steps happen to run. The
      // attempt component gives each environmental retry a fresh draw,
      // so a step that failed transiently can succeed when retried.
      uint64_t base = options_.seed ^ Fnv1a("transient:" + name);
      double rate = options_.tool_transient_rate;
      std::shared_ptr<int64_t> injections = transient_injections_;
      std::shared_ptr<obs::Observability> sinks = sinks_;
      tools->Register(std::make_unique<cadtools::Tool>(
          inner->descriptor(),
          [inner, base, rate, injections,
           sinks](const cadtools::ToolRunContext& ctx) {
            uint64_t state = base ^ (ctx.seed * 0x9e3779b97f4a7c15ull) ^
                             (static_cast<uint64_t>(ctx.attempt) *
                              0xbf58476d1ce4e5b9ull);
            if (NextUnit(&state) < rate) {
              // Side effects go through the capture-aware entry points
              // (obs::CountRaw, Counter::Increment, TraceRecorder::
              // Instant): running on a worker they are buffered and
              // land at the step's virtual completion event.
              obs::CountRaw(injections.get(), 1);
              if (sinks->metrics != nullptr) {
                sinks->metrics
                    ->FindOrCreateCounter(obs::kFaultTransientInjections)
                    ->Increment();
              }
              if (sinks->trace != nullptr) {
                sinks->trace->Instant(
                    obs::kSessionPid, /*tid=*/2, "transient_injection",
                    "fault",
                    {obs::TraceArg::Str("tool", inner->name())});
              }
              return cadtools::ToolRunResult::Transient(
                  inner->name() + ": injected transient failure");
            }
            return inner->Run(ctx);
          }));
    }
  }
  return Status::OK();
}

}  // namespace papyrus::fault
