#include "task/progress_view.h"

#include <sstream>

namespace papyrus::task {

ProgressView::ProgressView(const tdl::TaskTemplate& tmpl,
                           const tdl::TemplateLibrary* library)
    : task_name_(tmpl.name) {
  auto steps = tdl::ExtractSteps(tmpl.script, library);
  if (steps.ok()) {
    steps_ = std::move(*steps);
    layout_ = tdl::ComputeTemplateLayout(steps_);
    for (const tdl::StaticStep& step : steps_) {
      states_[step.name] = State::kPending;
    }
  }
}

void ProgressView::OnStepReady(const std::string& step_name,
                               int restart_count, std::string* options) {
  (void)restart_count;
  states_[step_name] = State::kRunning;
  messages_.push_back("dispatch " + step_name +
                      (options->empty() ? "" : " with options: " + *options));
}

void ProgressView::OnStepCompleted(const StepRecord& record) {
  states_[record.step_name] =
      record.exit_status == 0 ? State::kCompleted : State::kFailed;
  std::ostringstream msg;
  msg << record.step_name << " exit " << record.exit_status << " on host "
      << record.host;
  if (!record.message.empty()) msg << ": " << record.message;
  messages_.push_back(msg.str());
}

void ProgressView::OnTaskRestarted(const std::string& task_name,
                                   int resumed_internal_id) {
  ++restarts_;
  messages_.push_back(task_name + " restarted (resumed internal command " +
                      std::to_string(resumed_internal_id) + ")");
  // Steps after the resumed state return to pending; without internal-id
  // mapping here, conservatively reset running steps.
  for (auto& [name, state] : states_) {
    if (state == State::kRunning || state == State::kFailed) {
      state = State::kPending;
    }
  }
}

std::string ProgressView::Render() const {
  std::ostringstream out;
  out << "Task: " << task_name_;
  if (restarts_ > 0) out << "   (restarts: " << restarts_ << ")";
  out << "\n";
  for (size_t l = 0; l < layout_.levels.size(); ++l) {
    out << " ";
    for (size_t idx : layout_.levels[l]) {
      const tdl::StaticStep& step = steps_[idx];
      const char* marker = "[ ]";
      auto it = states_.find(step.name);
      if (it != states_.end()) {
        switch (it->second) {
          case State::kPending:
            marker = "[ ]";
            break;
          case State::kRunning:
            marker = "[>]";
            break;
          case State::kCompleted:
            marker = "[x]";
            break;
          case State::kFailed:
            marker = "[!]";
            break;
        }
      }
      out << " " << marker << " " << step.name;
    }
    out << "\n";
  }
  out << "Messages:\n";
  size_t start = messages_.size() > 6 ? messages_.size() - 6 : 0;
  for (size_t i = start; i < messages_.size(); ++i) {
    out << "  " << messages_[i] << "\n";
  }
  return out.str();
}

std::string ProgressView::ManPage(const cadtools::ToolRegistry& tools,
                                  const std::string& tool_name) {
  auto tool = tools.Find(tool_name);
  if (!tool.ok()) return "no manual entry for " + tool_name;
  return (*tool)->descriptor().man_page;
}

int ProgressView::completed_steps() const {
  int n = 0;
  for (const auto& [name, state] : states_) {
    if (state == State::kCompleted) ++n;
  }
  return n;
}

int ProgressView::failed_steps() const {
  int n = 0;
  for (const auto& [name, state] : states_) {
    if (state == State::kFailed) ++n;
  }
  return n;
}

}  // namespace papyrus::task
