#ifndef PAPYRUS_TASK_TASK_MANAGER_H_
#define PAPYRUS_TASK_TASK_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "cadtools/registry.h"
#include "lint/diagnostics.h"
#include "obs/observability.h"
#include "oct/attribute_store.h"
#include "oct/database.h"
#include "sprite/network.h"
#include "task/history.h"
#include "task/step_executor.h"
#include "tdl/template.h"

namespace papyrus::cache {
class DerivationCache;
}  // namespace papyrus::cache

namespace papyrus::task {

/// One task invocation request. The activity manager resolves input names
/// to concrete object versions before invoking (§5.1); output names are
/// plain — the database assigns versions under single-assignment update.
struct TaskInvocation {
  std::string template_name;
  std::vector<oct::ObjectId> inputs;       // one per formal input
  std::vector<std::string> output_names;   // one per formal output
  /// Per-step option overrides: step name -> replacement option string
  /// (everything after the tool name). The §4.3.1 "New Options:" box.
  std::map<std::string, std::string> option_overrides;
  /// Attribute cache for the invoking thread's workspace; may be null.
  oct::AttributeStore* attribute_store = nullptr;
  bool remigration = true;  // §4.3.3
  int max_restarts = 8;     // bound on programmable-abort restarts
  uint64_t seed = 1;        // base seed for source-less tools (edit)
  /// Bound on *environmental* retries per step (host crash or transient
  /// tool failure). Separate from `max_restarts`: a lost step is
  /// re-dispatched in place, never unwound.
  int max_step_retries = 4;
  /// Base of the exponential backoff applied before each environmental
  /// re-dispatch, in virtual microseconds (doubles per attempt).
  int64_t retry_backoff_micros = 1000;
  /// Every invocation is statically verified first (`papyrus-lint`
  /// pre-flight) and refused on error-severity findings. Setting this
  /// runs the template anyway; diagnostics are still reported through
  /// `TaskObserver::OnLintDiagnostic` and the runtime flow checker stays
  /// armed.
  bool override_lint = false;
  /// Escape hatch: run every step of this invocation even when an
  /// identical committed derivation is cached (the run still *populates*
  /// the cache on commit). For flows that must exercise the tools, e.g.
  /// qualification reruns.
  bool disable_step_cache = false;
};

/// Observation and interaction hooks — the library-level equivalent of the
/// Tk task-manager window (§4.3.1). All methods have empty defaults.
///
/// Threading contract: all engine *state mutation* is single-threaded.
/// With `worker_threads > 1` (see step_executor.h) tool payloads execute
/// speculatively on a worker pool, but every OCT commit, history record,
/// ADG edge, cache update — and every one of these callbacks — is funneled
/// back to the engine thread at the step's virtual completion event, in
/// the same fixed order serial execution uses. Every callback fires
/// *synchronously* on the thread that called `TaskManager::Invoke` /
/// `InvokeMany`, in the middle of the scheduler loop — there is no
/// callback thread and no queueing, at any worker count. Consequences:
///  - implementations need no locking of their own state unless they
///    share it with other application threads;
///  - implementations must not re-enter the TaskManager (no nested
///    Invoke, no mutation of the network/database) — the scheduler's
///    internal state is mid-update when callbacks run;
///  - callbacks must return promptly; virtual time is frozen while they
///    run, so blocking here stalls every concurrent task.
class TaskObserver {
 public:
  virtual ~TaskObserver() = default;
  /// A step is about to be dispatched; `options` holds its option string
  /// (after overrides) and may be modified — the "New Options:" entry.
  /// `restart_count` tells retry logic how many times the task restarted.
  virtual void OnStepReady(const std::string& step_name, int restart_count,
                           std::string* options) {
    (void)step_name;
    (void)restart_count;
    (void)options;
  }
  virtual void OnStepCompleted(const StepRecord& record) { (void)record; }
  virtual void OnTaskRestarted(const std::string& task_name,
                               int resumed_internal_id) {
    (void)task_name;
    (void)resumed_internal_id;
  }
  /// A step is being re-dispatched after an environmental failure (host
  /// crash or transient tool failure). `attempt` counts retries of this
  /// step so far (1 = first retry); `backoff_micros` is the virtual-time
  /// delay that preceded this re-dispatch.
  virtual void OnStepRetried(const std::string& step_name, int attempt,
                             int64_t backoff_micros) {
    (void)step_name;
    (void)attempt;
    (void)backoff_micros;
  }
  /// A workstation crashed while it was running this task's step.
  virtual void OnHostFailed(sprite::HostId host,
                            const std::string& step_name) {
    (void)host;
    (void)step_name;
  }
  /// One pre-flight lint finding for the invoked template (reported
  /// before any step runs, whatever the severity).
  virtual void OnLintDiagnostic(const lint::Diagnostic& diagnostic) {
    (void)diagnostic;
  }
  /// The derivation cache elided this step: no tool process ran, the
  /// outputs were bound from the recorded versions. `micros_saved` is the
  /// virtual execution cost of the original run.
  virtual void OnCacheHit(const std::string& step_name,
                          int64_t micros_saved) {
    (void)step_name;
    (void)micros_saved;
  }
};

namespace internal {
class Execution;
}  // namespace internal

/// The Papyrus Task Manager (§4.3): interprets TDL task templates,
/// extracts process-level parallelism, dispatches design steps across the
/// Sprite workstation network (with re-migration), enforces programmable
/// abort semantics, and packages each committed task's operation history
/// into a `TaskHistoryRecord`.
class TaskManager {
 public:
  TaskManager(oct::OctDatabase* db, const cadtools::ToolRegistry* tools,
              sprite::Network* network,
              const tdl::TemplateLibrary* templates);
  ~TaskManager();

  TaskManager(const TaskManager&) = delete;
  TaskManager& operator=(const TaskManager&) = delete;

  /// Runs one task invocation to commit (or abort). On success returns the
  /// history record; on abort all side effects have been removed
  /// (intermediate and created objects made invisible, processes killed).
  Result<TaskHistoryRecord> Invoke(const TaskInvocation& invocation,
                                   TaskObserver* observer = nullptr);

  /// Runs several invocations concurrently over the shared workstation
  /// network; element i of the result corresponds to invocation i.
  /// `observers` may be empty or parallel to `invocations`.
  std::vector<Result<TaskHistoryRecord>> InvokeMany(
      const std::vector<TaskInvocation>& invocations,
      const std::vector<TaskObserver*>& observers = {});

  // --- statistics -------------------------------------------------------
  // All statistics are backed by the metrics registry (obs/metrics.h)
  // under their stable catalogue names; these accessors read the same
  // counters the `metrics` exporters snapshot.
  int64_t tasks_committed() const { return c_tasks_committed_->value(); }
  int64_t tasks_aborted() const { return c_tasks_aborted_->value(); }
  int64_t steps_executed() const {
    return c_steps_completed_->value() + c_steps_failed_->value();
  }
  int64_t remigrations() const { return c_remigrations_->value(); }
  /// Step processes lost to host crashes, across all invocations.
  int64_t steps_lost() const { return c_steps_lost_->value(); }
  /// Environmental re-dispatches (crash + transient), across all
  /// invocations.
  int64_t steps_retried() const { return c_steps_retried_->value(); }
  /// Violations found by the runtime flow cross-checker: dispatches that
  /// contradict the template's static happens-before graph, or
  /// concurrent writers the static model missed. Zero on a healthy
  /// scheduler running clean templates.
  int64_t flow_violations() const { return c_flow_violations_->value(); }
  /// Steps elided by the derivation cache, across all invocations.
  int64_t steps_elided() const { return c_steps_elided_->value(); }

  /// Rebinds statistics and tracing to an external observability context
  /// (a Papyrus session's trace recorder + metrics registry). Counter
  /// values accumulated so far are carried into the new registry. Call
  /// before invoking; must come from the engine thread.
  void set_observability(const obs::Observability& obs);
  const obs::Observability& observability() const { return obs_; }

  /// Attaches a derivation cache (may be null to detach). The manager
  /// probes it before dispatching a step and populates it when a task
  /// commits. Not owned.
  void set_derivation_cache(cache::DerivationCache* cache) {
    cache_ = cache;
  }
  cache::DerivationCache* derivation_cache() const { return cache_; }

  /// Sizes the parallel step executor's worker pool. 1 (the default, see
  /// `DefaultWorkerThreads`) executes tool payloads inline on the engine
  /// thread; N > 1 runs them speculatively on N worker threads with
  /// byte-identical observable results. Engine thread, between
  /// invocations only.
  void set_worker_threads(int n);
  int worker_threads() const;

  /// The execution-id counter behind intermediate object names (each
  /// execution's intermediates are suffixed ".p<exec id>"). A restored
  /// session must continue the counter where the snapshot left off so
  /// re-run work names its intermediates identically; the daemon
  /// persists this in its per-generation session state. Engine thread,
  /// between invocations only.
  void set_next_execution_id(int id) { next_execution_id_ = id; }
  int next_execution_id() const { return next_execution_id_; }

  oct::OctDatabase* database() const { return db_; }
  const cadtools::ToolRegistry* tools() const { return tools_; }
  sprite::Network* network() const { return network_; }
  const tdl::TemplateLibrary* templates() const { return templates_; }

 private:
  friend class internal::Execution;

  /// Drives the given executions until all finish; interleaves
  /// interpretation with network events and performs re-migration.
  void DriveAll(std::vector<internal::Execution*>& executions);

  /// Attempts §4.3.3 re-migration for processes stuck on the home node.
  void TryRemigration();

  oct::OctDatabase* db_;
  const cadtools::ToolRegistry* tools_;
  sprite::Network* network_;
  const tdl::TemplateLibrary* templates_;

  /// (Re)binds the metric pointers to `registry`, carrying over any
  /// values already accumulated in the previous binding.
  void BindMetrics(obs::MetricsRegistry* registry);

  // pid -> owning execution, for routing completion signals.
  std::map<sprite::ProcessId, internal::Execution*> pid_router_;
  int next_execution_id_ = 1;

  /// Fallback registry for managers used outside a Papyrus session, so
  /// the statistics accessors always have live counters behind them.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Observability obs_;
  obs::Counter* c_tasks_committed_ = nullptr;
  obs::Counter* c_tasks_aborted_ = nullptr;
  obs::Counter* c_task_restarts_ = nullptr;
  obs::Counter* c_steps_completed_ = nullptr;
  obs::Counter* c_steps_failed_ = nullptr;
  obs::Counter* c_remigrations_ = nullptr;
  obs::Counter* c_steps_lost_ = nullptr;
  obs::Counter* c_steps_retried_ = nullptr;
  obs::Counter* c_flow_violations_ = nullptr;
  obs::Counter* c_steps_elided_ = nullptr;
  obs::Counter* c_attrs_computed_ = nullptr;
  obs::Counter* c_attrs_cached_ = nullptr;
  obs::Histogram* h_step_latency_ = nullptr;
  obs::Histogram* h_retry_backoff_ = nullptr;

  /// Runs tool payloads — inline or on the worker pool (step_executor.h).
  std::unique_ptr<StepExecutor> executor_;

  cache::DerivationCache* cache_ = nullptr;  // optional, not owned
};

}  // namespace papyrus::task

#endif  // PAPYRUS_TASK_TASK_MANAGER_H_
