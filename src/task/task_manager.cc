#include "task/task_manager.h"
#include "base/macros.h"
#include "base/thread_annotations.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <set>

#include "base/strings.h"
#include "cache/derivation_cache.h"
#include "cadtools/measurements.h"
#include "lint/linter.h"
#include "lint/runtime_checker.h"
#include "oct/design_data.h"
#include "tcl/interp.h"
#include "tcl/parser.h"

namespace papyrus::task {
namespace internal {

namespace {

/// Offset so execution tokens (used as Sprite parent pids) never collide
/// with real process ids.
constexpr sprite::ProcessId kExecTokenBase = 1000000;

}  // namespace

/// A subtask expansion frame: maps the subtask template's formal names to
/// actual object names and carries the frame's parsed command list. Frames
/// form a chain from the root template down through nested subtasks
/// (§4.2.2: subtasks are expanded in-line, to arbitrary depth).
struct FrameCtx {
  std::shared_ptr<FrameCtx> parent;
  std::map<std::string, std::string> name_map;  // formal -> actual
  std::string scope;        // "" for the root task, "3.1/" style below
  size_t push_site_idx = 0;  // parent's command index of the subtask cmd
  std::shared_ptr<std::vector<tcl::RawCommand>> cmds;
  int depth = 0;
  /// Interned uniquifier appended to intermediate object names resolved in
  /// this frame (".p<exec>" plus the sanitized scope), built once at frame
  /// creation so ResolveName is a single concatenation per formal.
  std::string intermediate_suffix;
};

/// A step command after name resolution, ready for dispatch.
struct ResolvedStep {
  int internal_id = -1;
  std::string scope;
  int user_id = 0;  // 0 = none
  std::string name;
  std::vector<std::string> input_names;   // actual object names
  std::vector<std::string> output_names;  // actual object names
  std::string tool;
  std::string options;  // option string after the tool name
  bool migratable = true;
  bool has_explicit_resumed = false;
  int resumed_user_id = 0;
  std::vector<int> control_deps;  // user ids within `scope`
  /// Environmental retries already consumed by this step (host crashes and
  /// transient tool failures; programmable-abort restarts reset it).
  int attempt = 0;
};

/// One in-flight (or suspended) task invocation: the state machine that
/// interprets a template and tracks the Active / Suspending / Result lists
/// of §4.3.2.
class Execution {
 public:
  Execution(TaskManager* mgr, const TaskInvocation& invocation,
            TaskObserver* observer, int exec_id)
      : mgr_(mgr),
        invocation_(invocation),
        observer_(observer),
        exec_id_(exec_id),
        exec_token_(kExecTokenBase + exec_id) {}

  ~Execution() {
    base::AssertEngineThread("Execution::~Execution");
    // Defensive: drop any leftover router entries and executor jobs.
    for (const auto& [pid, entry] : active_) {
      mgr_->pid_router_.erase(pid);
      if (entry.job_id != 0) mgr_->executor_->Discard(entry.job_id);
    }
  }

  Status Init();
  /// Makes as much interpretation progress as currently possible.
  /// Returns true when any progress happened.
  bool Advance();
  bool done() const { return done_; }
  bool remigration() const { return invocation_.remigration; }
  void OnProcessComplete(const sprite::ProcessInfo& pinfo);
  /// Routed from the network's failure handler: the host running this
  /// step crashed. Schedules an environmental retry (or fails the step
  /// when retries are exhausted).
  void OnProcessLost(const sprite::ProcessInfo& pinfo);
  /// Called by the driver when the whole system is wedged.
  void OnDeadlock();
  /// Earliest virtual time at which a backed-off retry becomes
  /// dispatchable, or INT64_MAX when none is pending. The driver advances
  /// the clock here when the network itself has no events left.
  int64_t NextRetryMicros() const;
  Result<TaskHistoryRecord> TakeResult();

 private:
  struct ActiveEntry {
    ResolvedStep step;
    std::vector<oct::ObjectId> input_ids;
    int64_t dispatch_micros = 0;
    sprite::HostId host = sprite::kNoHost;
    /// Speculative executor job holding this step's tool run (0 = none;
    /// the payload then runs inline at the completion event).
    uint64_t job_id = 0;
    /// Derivation-cache key parts, computed once at dispatch and reused
    /// for commit-time staging. Valid when `have_cache_key`.
    bool have_cache_key = false;
    std::string canonical_options;
    uint64_t seed_salt = 0;
    std::string cache_key;
    /// Content-addressed key for the shared store (empty when no store is
    /// attached or an input's content hash was unavailable).
    std::string content_key;
  };
  struct ResultEntry {
    oct::ObjectId id;
    int creating_internal_id = -1;  // -1: task input
    /// Bound from the derivation cache, not produced by a tool run. Undo
    /// must not hide a reused version the task did not create — unless the
    /// hit rematerialized it (see `restored_visibility`).
    bool reused = false;
    /// The cache hit made a previously-invisible intermediate visible
    /// again; undo and commit-time discard re-hide it.
    bool restored_visibility = false;
  };
  struct StackEntry {
    std::shared_ptr<FrameCtx> ctx;
    size_t idx;
  };
  struct StreamEntry {
    std::shared_ptr<FrameCtx> ctx;
    size_t idx;
  };
  /// A step waiting out its exponential backoff before re-dispatch.
  struct PendingRetry {
    ResolvedStep step;
    int64_t ready_micros = 0;
    int64_t backoff_micros = 0;
  };

  void RegisterTdlCommands();
  void ResetInterp();

  // TDL command handlers.
  tcl::EvalResult CmdStep(const std::vector<std::string>& argv);
  tcl::EvalResult CmdSubtask(const std::vector<std::string>& argv);
  tcl::EvalResult CmdAttribute(const std::vector<std::string>& argv);
  tcl::EvalResult CmdAbort(const std::vector<std::string>& argv);

  std::string ResolveName(const std::string& formal) const;
  std::string StepKey(const std::string& scope, int user_id) const {
    return scope + "#" + std::to_string(user_id);
  }
  bool NeedsSync(const tcl::RawCommand& cmd) const;
  bool Quiescent() const {
    return active_.empty() && suspended_.empty() && ready_queue_.empty() &&
           retry_queue_.empty();
  }

  Status DispatchStep(const ResolvedStep& step);
  void IssueStep(ResolvedStep step);
  /// Dispatches one ready step, routing Unavailable into the
  /// environmental-retry path and other errors into a task abort.
  void DispatchNow(ResolvedStep step);
  // --- incremental ready-set --------------------------------------------
  // Pending steps are indexed by their unsatisfied inputs/control-deps
  // (one waiter entry per unsatisfied occurrence); completions decrement
  // instead of rescanning every pending step, making dispatch O(edges)
  // per task instead of O(steps^2).
  int CountUnsatisfied(const ResolvedStep& step) const;
  /// Parks `step` in the ready-set index (or the ready queue when nothing
  /// is unsatisfied). Does not dispatch.
  void ParkStep(ResolvedStep step);
  /// Binds `name` into the Result list and credits steps waiting on it.
  void BindResult(const std::string& name, ResultEntry entry);
  /// Marks scope#uid complete and credits steps waiting on the control
  /// dependency.
  void MarkStepCompleted(const std::string& key);
  /// Dispatches everything in the ready queue (hits may cascade: a served
  /// step's outputs can make further steps ready mid-drain).
  void DrainReady();
  /// Serves `step` from the derivation cache when an identical committed
  /// derivation is recorded and still servable. On a hit the step
  /// completes instantly: outputs bound, history appended with the
  /// cache_hit marker, no process spawned. Returns false on a miss.
  bool TryCompleteFromCache(const ResolvedStep& step,
                            const std::vector<oct::ObjectId>& input_ids,
                            const std::string& cache_key,
                            const std::string& content_key,
                            const std::string& tool_version);
  /// Second-level elision: on a session-cache miss, probes the shared
  /// content-addressed store. A verified hit re-binds the stored payloads
  /// into this session's OCT namespace as freshly created versions — the
  /// step completes at zero virtual cost without spawning a process, and
  /// the derivation is staged for the session cache (with no content key,
  /// so a warm hit is never republished). Returns false on a miss.
  bool TryCompleteFromShared(const ResolvedStep& step,
                             const std::vector<oct::ObjectId>& input_ids,
                             const std::string& cache_key,
                             const std::string& content_key,
                             const std::string& tool_version);
  /// Queues an environmental retry with exponential backoff. Returns
  /// false when the step has exhausted its retry budget (the caller then
  /// surfaces the failure through the normal step-failure path).
  bool RequeueEnvironmental(const ResolvedStep& step);
  /// Dispatches retries whose backoff has elapsed. Returns true when any
  /// step was re-dispatched.
  bool DispatchDueRetries();
  /// Records a step failure with `exit_status`/`message` and runs the
  /// §4.3.4 failure policy (ResumedStep restart or $status surfacing).
  void FailStep(const ResolvedStep& step, int exit_status,
                const std::string& message, int64_t dispatch_micros,
                sprite::HostId host);
  void HandleStepFailure(const ResolvedStep& step);
  void ScheduleRestart(int resumed_internal_id);
  void DoRestart(int resumed_internal_id);
  void AbortTask(Status status);
  void Commit();

  // --- observability ----------------------------------------------------
  obs::TraceRecorder* trace() const { return mgr_->obs_.trace; }
  /// This execution's Chrome process-group id: thread 0 is the task span,
  /// one thread per step internal id carries that step's spans.
  int trace_pid() const { return obs::kTaskPidBase + exec_id_; }
  /// Labels the step's thread track (idempotent per track).
  void NameStepTrack(const ResolvedStep& step);

  TaskManager* mgr_;
  TaskInvocation invocation_;
  TaskObserver* observer_;
  int exec_id_;
  sprite::ProcessId exec_token_;

  const tdl::TaskTemplate* template_ = nullptr;
  std::unique_ptr<lint::RuntimeFlowChecker> checker_;
  std::unique_ptr<tcl::Interp> interp_;
  std::shared_ptr<FrameCtx> root_ctx_;
  std::vector<StackEntry> stack_;
  std::vector<StreamEntry> stream_;  // internal id -> interpreted command
  std::shared_ptr<FrameCtx> current_frame_;
  int current_internal_id_ = -1;
  size_t current_cmd_idx_ = 0;

  /// A pending step plus its count of unsatisfied inputs/control-deps.
  struct SuspendedStep {
    ResolvedStep step;
    int unsatisfied = 0;
  };
  /// A successful step execution staged for cache population; fed to the
  /// derivation cache only if the task commits (and the step survives all
  /// restarts), so aborted tasks and superseded attempts never pollute it.
  struct StagedCacheEntry {
    int internal_id = -1;
    std::string key;
    cache::CacheEntry entry;
  };

  std::map<sprite::ProcessId, ActiveEntry> active_;
  std::map<int, SuspendedStep> suspended_;  // seq -> pending step
  std::map<std::string, std::vector<int>> input_waiters_;  // name -> seqs
  std::map<std::string, std::vector<int>> dep_waiters_;  // scope#uid -> seqs
  std::deque<ResolvedStep> ready_queue_;
  int next_suspend_seq_ = 0;
  std::vector<PendingRetry> retry_queue_;
  std::map<std::string, ResultEntry> result_;  // actual name -> entry
  std::set<std::string> completed_keys_;       // scope#uid, successful
  std::map<std::string, int> key_internal_ids_;  // scope#uid -> internal id
  std::vector<StepRecord> step_records_;       // completion order

  oct::AttributeStore local_attr_store_;
  std::optional<int> pending_restart_;  // resumed internal id; -1 = scratch
  bool pending_abort_ = false;
  Status abort_status_;
  bool any_failed_ = false;
  std::string failure_messages_;
  int restarts_ = 0;
  int64_t steps_lost_ = 0;
  int64_t steps_retried_ = 0;
  int64_t backoff_micros_total_ = 0;
  int64_t steps_elided_ = 0;
  std::vector<StagedCacheEntry> staged_cache_;
  /// Synthetic flow-checker tokens for cache hits (negative, so they never
  /// collide with real Sprite pids or execution tokens).
  int64_t cache_token_seq_ = 0;
  int64_t invoke_micros_ = 0;
  bool done_ = false;
  Status result_status_;
  std::optional<TaskHistoryRecord> record_;
};

Status Execution::Init() {
  base::AssertEngineThread("Execution::Init");
  auto tmpl = mgr_->templates_->Find(invocation_.template_name);
  if (!tmpl.ok()) return tmpl.status();
  template_ = *tmpl;
  if (invocation_.inputs.size() != template_->formal_inputs.size()) {
    return Status::InvalidArgument(
        "task " + template_->name + " expects " +
        std::to_string(template_->formal_inputs.size()) + " inputs, got " +
        std::to_string(invocation_.inputs.size()));
  }
  if (invocation_.output_names.size() != template_->formal_outputs.size()) {
    return Status::InvalidArgument(
        "task " + template_->name + " expects " +
        std::to_string(template_->formal_outputs.size()) +
        " outputs, got " +
        std::to_string(invocation_.output_names.size()));
  }
  auto cmds = tcl::ParseScript(template_->script);
  if (!cmds.ok()) return cmds.status();

  // Pre-flight static verification: lint the template against the tool
  // registry and template library before any step is dispatched. Error
  // findings refuse the invocation unless explicitly overridden; the
  // resulting flow graph arms the runtime cross-checker either way.
  lint::LintOptions lint_options;
  lint_options.tools = mgr_->tools_;
  lint_options.library = mgr_->templates_;
  lint::LintResult preflight = lint::LintTemplate(*template_, lint_options);
  if (observer_ != nullptr) {
    for (const lint::Diagnostic& d : preflight.diagnostics) {
      observer_->OnLintDiagnostic(d);
    }
  }
  if (!preflight.ok() && !invocation_.override_lint) {
    std::string first;
    for (const lint::Diagnostic& d : preflight.diagnostics) {
      if (d.severity == lint::Severity::kError) {
        first = d.ToString();
        break;
      }
    }
    return Status::FailedPrecondition(
        "template " + template_->name + " failed pre-flight lint with " +
        std::to_string(preflight.errors) + " error(s); first: " + first +
        " (set TaskInvocation::override_lint to run anyway)");
  }
  checker_ = std::make_unique<lint::RuntimeFlowChecker>(preflight.graph);

  root_ctx_ = std::make_shared<FrameCtx>();
  root_ctx_->intermediate_suffix = ".p" + std::to_string(exec_id_);
  root_ctx_->cmds =
      std::make_shared<std::vector<tcl::RawCommand>>(std::move(*cmds));
  for (size_t i = 0; i < template_->formal_inputs.size(); ++i) {
    root_ctx_->name_map[template_->formal_inputs[i]] =
        invocation_.inputs[i].name;
    // Task inputs enter the Result list up front: they are available to
    // every step from the start.
    result_[invocation_.inputs[i].name] =
        ResultEntry{invocation_.inputs[i], -1};
  }
  for (size_t i = 0; i < template_->formal_outputs.size(); ++i) {
    root_ctx_->name_map[template_->formal_outputs[i]] =
        invocation_.output_names[i];
  }
  stack_.push_back(StackEntry{root_ctx_, 1});  // skip the task header
  current_frame_ = root_ctx_;
  invoke_micros_ = mgr_->network_->clock()->NowMicros();
  ResetInterp();
  if (obs::TraceRecorder* tr = trace()) {
    tr->SetProcessName(trace_pid(), "task " + std::to_string(exec_id_) +
                                        ": " + template_->name);
    tr->SetThreadName(trace_pid(), 0, "task");
    tr->Begin(trace_pid(), 0, template_->name, "task",
              {obs::TraceArg::Int("execution", exec_id_)});
  }
  return Status::OK();
}

void Execution::NameStepTrack(const ResolvedStep& step) {
  base::AssertEngineThread("Execution::NameStepTrack");
  if (obs::TraceRecorder* tr = trace()) {
    tr->SetThreadName(trace_pid(), step.internal_id, "step " + step.name);
  }
}

void Execution::ResetInterp() {
  interp_ = std::make_unique<tcl::Interp>();
  RegisterTdlCommands();
  interp_->SetVar("status", "0");
}

void Execution::RegisterTdlCommands() {
  interp_->RegisterCommand(
      "step", [this](tcl::Interp&, const std::vector<std::string>& argv) {
        return CmdStep(argv);
      });
  interp_->RegisterCommand(
      "subtask",
      [this](tcl::Interp&, const std::vector<std::string>& argv) {
        return CmdSubtask(argv);
      });
  interp_->RegisterCommand(
      "attribute",
      [this](tcl::Interp&, const std::vector<std::string>& argv) {
        return CmdAttribute(argv);
      });
  interp_->RegisterCommand(
      "abort", [this](tcl::Interp&, const std::vector<std::string>& argv) {
        return CmdAbort(argv);
      });
  interp_->RegisterCommand(
      "task", [](tcl::Interp&, const std::vector<std::string>&) {
        return tcl::EvalResult::Error(
            "task command is only valid as a template header");
      });
}

std::string Execution::ResolveName(const std::string& formal) const {
  auto it = current_frame_->name_map.find(formal);
  if (it != current_frame_->name_map.end()) return it->second;
  // Intermediate object: uniquified per task-manager instance (§4.3.4 —
  // the thesis appends the task manager's process id; we append the
  // execution id) and per subtask scope. The suffix is interned on the
  // frame at creation time, so resolution is a single concatenation.
  return formal + current_frame_->intermediate_suffix;
}

bool Execution::NeedsSync(const tcl::RawCommand& cmd) const {
  for (const tcl::RawWord& w : cmd.words) {
    if (w.text.find("$status") != std::string::npos) return true;
    if (w.text.find("attribute") != std::string::npos) return true;
  }
  return false;
}

bool Execution::Advance() {
  if (done_) return false;
  bool progress = false;
  if (pending_abort_) {
    AbortTask(abort_status_);
    return true;
  }
  if (DispatchDueRetries()) progress = true;
  if (!ready_queue_.empty()) {
    DrainReady();
    progress = true;
  }
  if (done_) return true;
  if (pending_abort_) {
    AbortTask(abort_status_);
    return true;
  }
  if (pending_restart_.has_value()) {
    if (restarts_ >= invocation_.max_restarts) {
      AbortTask(Status::Aborted("restart limit exceeded (" +
                                std::to_string(invocation_.max_restarts) +
                                "); last failures: " + failure_messages_));
      return true;
    }
    DoRestart(*pending_restart_);
    // Restart re-dispatches surviving ready steps, which can fail hard.
    if (pending_abort_) {
      AbortTask(abort_status_);
      return true;
    }
    progress = true;
  }
  // Interpret top-level commands until blocked (or finished).
  while (!stack_.empty()) {
    StackEntry& top = stack_.back();
    if (top.idx >= top.ctx->cmds->size()) {
      stack_.pop_back();
      progress = true;
      continue;
    }
    const tcl::RawCommand& cmd = (*top.ctx->cmds)[top.idx];
    if (NeedsSync(cmd) && !Quiescent()) {
      return progress;  // wait for outstanding steps to settle
    }
    bool observes_status = false;
    for (const tcl::RawWord& w : cmd.words) {
      if (w.text.find("$status") != std::string::npos) {
        observes_status = true;
        break;
      }
    }
    current_internal_id_ = static_cast<int>(stream_.size());
    stream_.push_back(StreamEntry{top.ctx, top.idx});
    current_frame_ = top.ctx;
    current_cmd_idx_ = top.idx;
    top.idx++;
    // NOTE: evaluating the command may push a subtask frame, which can
    // reallocate stack_; `top` must not be used past this point.
    tcl::EvalResult r = interp_->EvalCommand(cmd);
    progress = true;
    if (done_) return true;
    if (observes_status) {
      // The template inspected $status: any earlier step failure has been
      // observed and handled by the script, so it no longer forces an
      // abort at finalization. (Failures after this point still do.)
      any_failed_ = false;
    }
    if (r.code == tcl::EvalCode::kError) {
      AbortTask(Status::InvalidArgument("template error in task " +
                                        template_->name + ": " + r.value));
      return true;
    }
    if (pending_abort_ || pending_restart_.has_value()) {
      return true;  // handled at the next Advance
    }
  }
  // Interpretation complete; finalize once all dispatched work settles
  // (including steps still waiting out a retry backoff).
  if (!active_.empty() || !retry_queue_.empty()) return progress;
  if (pending_abort_ || pending_restart_.has_value()) return progress;
  if (!ready_queue_.empty()) {
    DrainReady();
    return true;
  }
  if (!suspended_.empty()) {
    std::string names;
    for (const auto& [seq, s] : suspended_) names += " " + s.step.name;
    AbortTask(Status::Aborted("unsatisfiable step dependencies:" + names +
                              (failure_messages_.empty()
                                   ? ""
                                   : "; failures: " + failure_messages_)));
    return true;
  }
  if (any_failed_) {
    AbortTask(Status::Aborted("design step failed: " + failure_messages_));
    return true;
  }
  Commit();
  return true;
}

tcl::EvalResult Execution::CmdStep(const std::vector<std::string>& argv) {
  if (argv.size() < 5) {
    return tcl::EvalResult::Error(
        "wrong # args: step [ID] Name {In} {Out} {Invocation} ?options?");
  }
  ResolvedStep step;
  step.internal_id = current_internal_id_;
  step.scope = current_frame_->scope;

  auto head = tcl::ParseList(argv[1]);
  if (!head.ok()) return tcl::EvalResult::Error(head.status().message());
  int64_t uid = 0;
  if (head->size() == 2 && ParseInt64((*head)[0], &uid)) {
    step.user_id = static_cast<int>(uid);
    step.name = (*head)[1];
  } else if (head->size() == 1) {
    step.name = (*head)[0];
  } else {
    return tcl::EvalResult::Error("bad step name field: " + argv[1]);
  }

  auto inputs = tcl::ParseList(argv[2]);
  auto outputs = tcl::ParseList(argv[3]);
  if (!inputs.ok() || !outputs.ok()) {
    return tcl::EvalResult::Error("bad step input/output list");
  }
  std::map<std::string, std::string> formal_to_actual;
  for (const std::string& formal : *inputs) {
    std::string actual = ResolveName(formal);
    step.input_names.push_back(actual);
    formal_to_actual[formal] = actual;
  }
  for (const std::string& formal : *outputs) {
    std::string actual = ResolveName(formal);
    step.output_names.push_back(actual);
    formal_to_actual[formal] = actual;
  }

  std::vector<std::string> words = SplitWhitespace(argv[4]);
  if (words.empty()) {
    return tcl::EvalResult::Error("empty invocation in step " + step.name);
  }
  step.tool = words[0];
  std::vector<std::string> option_words;
  for (size_t i = 1; i < words.size(); ++i) {
    auto it = formal_to_actual.find(words[i]);
    option_words.push_back(it == formal_to_actual.end() ? words[i]
                                                        : it->second);
  }
  step.options = Join(option_words, " ");

  // Optional self-identified fields (§4.2.2).
  for (size_t i = 5; i < argv.size(); ++i) {
    auto field = tcl::ParseList(argv[i]);
    if (!field.ok() || field->empty()) {
      return tcl::EvalResult::Error("bad optional step field: " + argv[i]);
    }
    const std::string& kind = (*field)[0];
    if (kind == "NonMigrate") {
      step.migratable = false;
    } else if (kind == "ResumedStep") {
      int64_t rid = 0;
      if (field->size() != 2 || !ParseInt64((*field)[1], &rid)) {
        return tcl::EvalResult::Error("ResumedStep requires an integer id");
      }
      step.has_explicit_resumed = true;
      step.resumed_user_id = static_cast<int>(rid);
    } else if (kind == "ControlDependency") {
      for (size_t j = 1; j < field->size(); ++j) {
        int64_t dep = 0;
        if (!ParseInt64((*field)[j], &dep)) {
          return tcl::EvalResult::Error(
              "ControlDependency requires integer ids");
        }
        step.control_deps.push_back(static_cast<int>(dep));
      }
    } else {
      return tcl::EvalResult::Error("unknown step field \"" + kind + "\"");
    }
  }

  if (step.user_id > 0) {
    key_internal_ids_[StepKey(step.scope, step.user_id)] =
        step.internal_id;
  }
  IssueStep(std::move(step));
  return tcl::EvalResult::Ok();
}

tcl::EvalResult Execution::CmdSubtask(
    const std::vector<std::string>& argv) {
  if (argv.size() != 4) {
    return tcl::EvalResult::Error(
        "wrong # args: subtask [ID] Name {In} {Out}");
  }
  auto head = tcl::ParseList(argv[1]);
  if (!head.ok()) return tcl::EvalResult::Error(head.status().message());
  std::string name = head->empty() ? "" : head->back();
  auto tmpl = mgr_->templates_->Find(name);
  if (!tmpl.ok()) {
    return tcl::EvalResult::Error(tmpl.status().message());
  }
  auto ins = tcl::ParseList(argv[2]);
  auto outs = tcl::ParseList(argv[3]);
  if (!ins.ok() || !outs.ok()) {
    return tcl::EvalResult::Error("bad subtask argument list");
  }
  // §4.2.2: mismatched input/output lists force the containing task to
  // abort.
  if (ins->size() != (*tmpl)->formal_inputs.size() ||
      outs->size() != (*tmpl)->formal_outputs.size()) {
    pending_abort_ = true;
    abort_status_ = Status::InvalidArgument(
        "subtask " + name + " argument lists do not match its template");
    return tcl::EvalResult::Ok();
  }
  auto cmds = tcl::ParseScript((*tmpl)->script);
  if (!cmds.ok()) return tcl::EvalResult::Error(cmds.status().message());

  auto ctx = std::make_shared<FrameCtx>();
  ctx->parent = current_frame_;
  ctx->depth = current_frame_->depth + 1;
  ctx->push_site_idx = current_cmd_idx_;
  ctx->scope = current_frame_->scope + std::to_string(current_cmd_idx_) +
               "." + std::to_string(ctx->depth) + "/";
  {
    std::string sanitized = ctx->scope;
    for (char& c : sanitized) {
      if (c == '/') c = '_';
    }
    ctx->intermediate_suffix =
        ".p" + std::to_string(exec_id_) + ".s" + sanitized;
  }
  ctx->cmds =
      std::make_shared<std::vector<tcl::RawCommand>>(std::move(*cmds));
  for (size_t i = 0; i < ins->size(); ++i) {
    ctx->name_map[(*tmpl)->formal_inputs[i]] = ResolveName((*ins)[i]);
  }
  for (size_t i = 0; i < outs->size(); ++i) {
    ctx->name_map[(*tmpl)->formal_outputs[i]] = ResolveName((*outs)[i]);
  }
  stack_.push_back(StackEntry{ctx, 1});  // skip the subtask's task header
  return tcl::EvalResult::Ok();
}

tcl::EvalResult Execution::CmdAttribute(
    const std::vector<std::string>& argv) {
  base::AssertEngineThread("Execution::CmdAttribute");
  if (argv.size() != 3) {
    return tcl::EvalResult::Error(
        "wrong # args: attribute Object_Name Attribute_Name");
  }
  std::string actual = ResolveName(argv[1]);
  auto resolve = [&]() -> std::optional<oct::ObjectId> {
    auto it = result_.find(actual);
    if (it != result_.end()) return it->second.id;
    auto latest = mgr_->db_->LatestVisible(actual);
    if (latest.ok()) return *latest;
    return std::nullopt;
  };
  std::optional<oct::ObjectId> resolved = resolve();
  // §4.3.6: attribute computation is synchronous. When the object is the
  // output of a still-running step (e.g. inside a while-loop body), drain
  // the network until it materializes or nothing can make progress.
  while (!resolved.has_value() && !active_.empty() &&
         !pending_abort_ && !pending_restart_.has_value()) {
    if (!mgr_->network_->Step()) break;
    resolved = resolve();
  }
  if (!resolved.has_value()) {
    return tcl::EvalResult::Error("attribute: no such object \"" + actual +
                                  "\"");
  }
  oct::ObjectId id = *resolved;
  oct::AttributeStore* store = invocation_.attribute_store != nullptr
                                   ? invocation_.attribute_store
                                   : &local_attr_store_;
  if (auto cached = store->GetValue(id, argv[2]); cached.ok()) {
    mgr_->c_attrs_cached_->Increment();
    return tcl::EvalResult::Ok(*cached);
  }
  auto rec = mgr_->db_->Get(id);
  if (!rec.ok()) {
    return tcl::EvalResult::Error(rec.status().message());
  }
  auto value = cadtools::MeasureAttribute((*rec)->payload, argv[2]);
  if (!value.ok()) {
    return tcl::EvalResult::Error(value.status().message());
  }
  // Cache for subsequent queries (§4.3.6: the task manager caches computed
  // results in the attribute database).
  store->Attach(id, argv[2], cadtools::MeasurementToolFor(argv[2]),
                oct::AttributeMode::kLazy);
  (void)store->SetComputed(id, argv[2], *value);
  mgr_->c_attrs_computed_->Increment();
  return tcl::EvalResult::Ok(*value);
}

tcl::EvalResult Execution::CmdAbort(const std::vector<std::string>& argv) {
  if (argv.size() > 2) {
    return tcl::EvalResult::Error("wrong # args: abort ?Step_Identifier?");
  }
  if (argv.size() == 1) {
    // Abort the entire task: clean up side effects and exit (§4.2.2).
    pending_abort_ = true;
    abort_status_ = Status::Aborted("task aborted by abort command");
    return tcl::EvalResult::Ok();
  }
  // Abort a specific step, identified by step ID or symbolic name.
  int64_t uid = 0;
  bool by_id = ParseInt64(argv[1], &uid);
  const ResolvedStep* target = nullptr;
  for (const auto& [pid, entry] : active_) {
    if (entry.step.scope != current_frame_->scope) continue;
    if ((by_id && entry.step.user_id == uid) ||
        (!by_id && entry.step.name == argv[1])) {
      target = &entry.step;
    }
  }
  // Also allow aborting an already-issued (possibly completed) step: the
  // restart machinery undoes its effects.
  std::optional<ResolvedStep> record_copy;
  if (target == nullptr && !by_id) {
    for (auto rit = step_records_.rbegin(); rit != step_records_.rend();
         ++rit) {
      if (rit->step_name == argv[1]) {
        // Reconstruct enough of the step for restart resolution.
        ResolvedStep s;
        s.name = rit->step_name;
        s.scope = current_frame_->scope;
        s.internal_id = rit->internal_id;
        record_copy = s;
        target = &*record_copy;
        break;
      }
    }
  }
  if (target == nullptr && by_id) {
    auto it = key_internal_ids_.find(
        StepKey(current_frame_->scope, static_cast<int>(uid)));
    if (it != key_internal_ids_.end()) {
      ResolvedStep s;
      s.user_id = static_cast<int>(uid);
      s.scope = current_frame_->scope;
      s.internal_id = it->second;
      record_copy = s;
      target = &*record_copy;
    }
  }
  if (target == nullptr) {
    return tcl::EvalResult::Error("abort: no such step \"" + argv[1] +
                                  "\"");
  }
  if (target->has_explicit_resumed && target->resumed_user_id > 0) {
    auto it = key_internal_ids_.find(
        StepKey(target->scope, target->resumed_user_id));
    if (it == key_internal_ids_.end()) {
      return tcl::EvalResult::Error("abort: resumed step " +
                                    std::to_string(target->resumed_user_id) +
                                    " was never issued");
    }
    ScheduleRestart(it->second);
  } else {
    ScheduleRestart(-1);  // default: restart from scratch (§3.3.2)
  }
  return tcl::EvalResult::Ok();
}

int Execution::CountUnsatisfied(const ResolvedStep& step) const {
  int unsatisfied = 0;
  for (const std::string& input : step.input_names) {
    if (result_.count(input) == 0) ++unsatisfied;
  }
  for (int dep : step.control_deps) {
    if (completed_keys_.count(StepKey(step.scope, dep)) == 0) ++unsatisfied;
  }
  return unsatisfied;
}

void Execution::ParkStep(ResolvedStep step) {
  int unsatisfied = CountUnsatisfied(step);
  if (unsatisfied == 0) {
    ready_queue_.push_back(std::move(step));
    return;
  }
  int seq = next_suspend_seq_++;
  // One waiter entry per unsatisfied occurrence, so repeated input names
  // decrement once per binding event.
  for (const std::string& input : step.input_names) {
    if (result_.count(input) == 0) input_waiters_[input].push_back(seq);
  }
  for (int dep : step.control_deps) {
    std::string key = StepKey(step.scope, dep);
    if (completed_keys_.count(key) == 0) dep_waiters_[key].push_back(seq);
  }
  suspended_[seq] = SuspendedStep{std::move(step), unsatisfied};
}

void Execution::BindResult(const std::string& name, ResultEntry entry) {
  result_[name] = std::move(entry);
  auto it = input_waiters_.find(name);
  if (it == input_waiters_.end()) return;
  std::vector<int> seqs = std::move(it->second);
  input_waiters_.erase(it);
  for (int seq : seqs) {
    auto sit = suspended_.find(seq);
    if (sit == suspended_.end()) continue;  // dropped by restart/abort
    if (--sit->second.unsatisfied == 0) {
      ready_queue_.push_back(std::move(sit->second.step));
      suspended_.erase(sit);
    }
  }
}

void Execution::MarkStepCompleted(const std::string& key) {
  completed_keys_.insert(key);
  auto it = dep_waiters_.find(key);
  if (it == dep_waiters_.end()) return;
  std::vector<int> seqs = std::move(it->second);
  dep_waiters_.erase(it);
  for (int seq : seqs) {
    auto sit = suspended_.find(seq);
    if (sit == suspended_.end()) continue;
    if (--sit->second.unsatisfied == 0) {
      ready_queue_.push_back(std::move(sit->second.step));
      suspended_.erase(sit);
    }
  }
}

void Execution::DispatchNow(ResolvedStep step) {
  Status st = DispatchStep(step);
  if (st.IsUnavailable()) {
    // Environmental: no host can take the process right now (e.g. the
    // home node is down). Back off and retry rather than aborting.
    if (!RequeueEnvironmental(step)) {
      FailStep(step, cadtools::kToolExitTransient,
               st.message() + " (retries exhausted)",
               mgr_->network_->clock()->NowMicros(), sprite::kNoHost);
    }
  } else if (!st.ok()) {
    pending_abort_ = true;
    abort_status_ = st;
  }
}

void Execution::DrainReady() {
  while (!ready_queue_.empty() && !pending_abort_ &&
         !pending_restart_.has_value()) {
    ResolvedStep step = std::move(ready_queue_.front());
    ready_queue_.pop_front();
    DispatchNow(std::move(step));
  }
}

void Execution::IssueStep(ResolvedStep step) {
  if (CountUnsatisfied(step) == 0) {
    DispatchNow(std::move(step));
    // A cache hit binds outputs immediately, which can make queued steps
    // ready before any network event fires.
    DrainReady();
  } else {
    ParkStep(std::move(step));
  }
}

Status Execution::DispatchStep(const ResolvedStep& step) {
  base::AssertEngineThread("Execution::DispatchStep");
  auto tool = mgr_->tools_->Find(step.tool);
  if (!tool.ok()) return tool.status();

  ResolvedStep dispatched = step;
  // Apply user option overrides (the "New Options:" interaction, §4.3.1).
  auto ov = invocation_.option_overrides.find(step.name);
  if (ov != invocation_.option_overrides.end()) {
    dispatched.options = ov->second;
  }
  if (observer_ != nullptr) {
    observer_->OnStepReady(step.name, restarts_, &dispatched.options);
  }

  std::vector<oct::ObjectId> input_ids;
  int64_t total_bytes = 0;
  for (const std::string& input : dispatched.input_names) {
    const ResultEntry& entry = result_.at(input);
    input_ids.push_back(entry.id);
    // O(1) cached size lookup: the byte footprint was computed when the
    // version was created; dispatch never re-serializes payloads.
    total_bytes += mgr_->db_->PayloadBytes(entry.id);
  }

  // Derivation-cache key parts are computed once here and cached on the
  // ActiveEntry, so the cache probe and the commit-time staging share one
  // canonicalization pass per dispatch.
  bool have_cache_key = mgr_->cache_ != nullptr;
  std::string canonical_options;
  uint64_t seed_salt = 0;
  std::string cache_key;
  std::string content_key;
  if (have_cache_key) {
    canonical_options = cache::DerivationCache::CanonicalizeOptions(
        dispatched.options, dispatched.input_names,
        dispatched.output_names);
    seed_salt = invocation_.seed ^
                Fnv1a(dispatched.scope + dispatched.name + canonical_options);
    cache_key = cache::DerivationCache::MakeKey(
        dispatched.tool, (*tool)->descriptor().version, canonical_options,
        seed_salt, input_ids);
    if (mgr_->cache_->shared_store() != nullptr) {
      // Content-addressed key: identical bytes-in (not just identical
      // version ids) derive the same key in any session or daemon epoch.
      std::vector<std::string> input_hashes;
      input_hashes.reserve(input_ids.size());
      bool hashed = true;
      for (const oct::ObjectId& id : input_ids) {
        auto h = mgr_->db_->ContentHash(id);
        if (!h.ok()) {
          hashed = false;
          break;
        }
        input_hashes.push_back(std::move(*h));
      }
      if (hashed) {
        content_key = cache::DerivationCache::MakeContentKey(
            dispatched.tool, (*tool)->descriptor().version,
            canonical_options, seed_salt, input_hashes);
      }
    }
  }

  // History-based elision: an identical committed derivation completes
  // the step instantly from its recorded outputs, spawning no process.
  if (have_cache_key &&
      TryCompleteFromCache(dispatched, input_ids, cache_key, content_key,
                           (*tool)->descriptor().version)) {
    return Status::OK();
  }

  bool migratable =
      dispatched.migratable && !(*tool)->descriptor().interactive;
  sprite::HostId host = mgr_->network_->home_host();
  if (migratable) {
    // §4.3.2: find an idle workstation; execute locally when none exists.
    auto idle = mgr_->network_->FindIdleHost();
    if (idle.ok()) host = *idle;
  }
  int64_t work = (*tool)->CostMicros(total_bytes);
  auto pid = mgr_->network_->Spawn(exec_token_, dispatched.tool, work,
                                   host, migratable);
  if (!pid.ok()) return pid.status();

  // Speculative submission: snapshot the input payloads (immutable under
  // single-assignment update) and hand the tool run to the step executor,
  // which may compute it on a worker thread while virtual time advances.
  // The result is consumed — and every side effect applied — at the
  // step's virtual completion event, keeping execution byte-identical to
  // serial mode. A failed snapshot (job_id 0) falls back to running the
  // payload inline at completion.
  uint64_t job_id = 0;
  {
    std::vector<oct::DesignPayload> payloads;
    std::vector<std::string> payload_names;
    payloads.reserve(input_ids.size());
    payload_names.reserve(input_ids.size());
    bool snapshot_ok = true;
    for (const oct::ObjectId& id : input_ids) {
      auto rec = mgr_->db_->Peek(id);
      if (!rec.ok()) {
        snapshot_ok = false;
        break;
      }
      payloads.push_back((*rec)->payload);
      payload_names.push_back(id.name);
    }
    if (snapshot_ok) {
      cadtools::ToolOptions options = cadtools::ToolOptions::Parse(
          SplitWhitespace(dispatched.options));
      uint64_t seed =
          invocation_.seed ^ Fnv1a(dispatched.scope + dispatched.name +
                                   dispatched.options);
      job_id = mgr_->executor_->Submit(
          *tool, std::move(payloads), std::move(payload_names),
          std::move(options), seed, dispatched.attempt);
    }
  }

  ActiveEntry entry;
  entry.step = std::move(dispatched);
  entry.input_ids = std::move(input_ids);
  entry.dispatch_micros = mgr_->network_->clock()->NowMicros();
  entry.host = host;
  entry.job_id = job_id;
  entry.have_cache_key = have_cache_key;
  entry.canonical_options = std::move(canonical_options);
  entry.seed_salt = seed_salt;
  entry.cache_key = std::move(cache_key);
  entry.content_key = std::move(content_key);
  active_[*pid] = std::move(entry);
  mgr_->pid_router_[*pid] = this;
  if (checker_ != nullptr) {
    const ResolvedStep& placed = active_[*pid].step;
    checker_->OnDispatch(*pid, placed.scope, placed.name,
                         placed.output_names);
  }
  if (obs::TraceRecorder* tr = trace()) {
    const ResolvedStep& placed = active_[*pid].step;
    NameStepTrack(placed);
    tr->Begin(trace_pid(), placed.internal_id, placed.name, "step",
              {obs::TraceArg::Str("tool", placed.tool),
               obs::TraceArg::Int("host", host),
               obs::TraceArg::Int("attempt", placed.attempt)});
  }
  return Status::OK();
}

bool Execution::TryCompleteFromCache(
    const ResolvedStep& step, const std::vector<oct::ObjectId>& input_ids,
    const std::string& cache_key, const std::string& content_key,
    const std::string& tool_version) {
  base::AssertEngineThread("Execution::TryCompleteFromCache");
  cache::DerivationCache* cache = mgr_->cache_;
  if (cache == nullptr || invocation_.disable_step_cache) return false;
  const cache::CacheEntry* hit = cache->Probe(cache_key);
  if (hit == nullptr) {
    // Session-cache miss: fall through to the shared content-addressed
    // store, where another session (or a previous daemon epoch) may have
    // committed this exact derivation.
    return TryCompleteFromShared(step, input_ids, cache_key, content_key,
                                 tool_version);
  }
  if (hit->outputs.size() != step.output_names.size()) return false;

  int64_t now = mgr_->network_->clock()->NowMicros();
  StepRecord record;
  record.step_name = step.name;
  record.tool = step.tool;
  record.invocation =
      step.tool + (step.options.empty() ? "" : " " + step.options);
  record.inputs = input_ids;
  record.dispatch_micros = now;
  record.completion_micros = now;  // instant in virtual time
  record.host = sprite::kNoHost;   // no process ran anywhere
  record.exit_status = 0;
  record.internal_id = step.internal_id;
  record.cache_hit = true;

  for (size_t i = 0; i < hit->outputs.size(); ++i) {
    const cache::CachedOutput& out = hit->outputs[i];
    ResultEntry entry;
    entry.id = out.id;
    entry.creating_internal_id = step.internal_id;
    entry.reused = true;
    // Recorded intermediates were hidden when their task committed;
    // rematerialize them for this task's consumers. Undo re-hides.
    auto rec = mgr_->db_->Peek(out.id);
    if (rec.ok() && !(*rec)->visible) {
      (void)mgr_->db_->MarkVisible(out.id);
      entry.restored_visibility = true;
    }
    record.outputs.push_back(out.id);
    BindResult(step.output_names[i], std::move(entry));
  }
  interp_->SetVar("status", "0");
  if (step.user_id > 0) {
    MarkStepCompleted(StepKey(step.scope, step.user_id));
  }
  if (checker_ != nullptr) {
    // The flow checker still sees the step (so happens-before coverage
    // stays complete) under a synthetic token that settles immediately.
    int64_t token = -(++cache_token_seq_);
    checker_->OnDispatch(token, step.scope, step.name, step.output_names);
    checker_->OnSettle(token);
  }
  step_records_.push_back(record);
  ++steps_elided_;
  mgr_->c_steps_elided_->Increment();
  if (obs::TraceRecorder* tr = trace()) {
    NameStepTrack(step);
    tr->Instant(trace_pid(), step.internal_id, "cache_hit", "cache",
                {obs::TraceArg::Str("step", step.name),
                 obs::TraceArg::Int("micros_saved", hit->cost_micros)});
  }
  if (observer_ != nullptr) {
    observer_->OnCacheHit(step.name, hit->cost_micros);
    observer_->OnStepCompleted(record);
  }
  return true;
}

bool Execution::TryCompleteFromShared(
    const ResolvedStep& step, const std::vector<oct::ObjectId>& input_ids,
    const std::string& cache_key, const std::string& content_key,
    const std::string& tool_version) {
  base::AssertEngineThread("Execution::TryCompleteFromShared");
  cache::DerivationCache* cache = mgr_->cache_;
  if (content_key.empty()) return false;
  auto fetched = cache->ProbeShared(content_key);
  if (!fetched.has_value()) return false;
  if (fetched->outputs.size() != step.output_names.size()) return false;

  // The stored payloads do not exist in this session's namespace; re-bind
  // them as freshly created versions. A cold run of this step would create
  // byte-identical versions here (the content key pins tool, version,
  // options, salt, and input bytes), so elision stays invisible to
  // everything downstream except the clock.
  oct::Transaction txn(mgr_->db_);
  for (size_t i = 0; i < fetched->outputs.size(); ++i) {
    txn.StageCreate(step.output_names[i],
                    std::move(fetched->outputs[i].payload), step.tool);
  }
  auto created = txn.Commit();
  if (!created.ok()) return false;  // fall back to running the tool

  int64_t now = mgr_->network_->clock()->NowMicros();
  StepRecord record;
  record.step_name = step.name;
  record.tool = step.tool;
  record.invocation =
      step.tool + (step.options.empty() ? "" : " " + step.options);
  record.inputs = input_ids;
  record.dispatch_micros = now;
  record.completion_micros = now;  // instant in virtual time
  record.host = sprite::kNoHost;   // no process ran anywhere
  record.exit_status = 0;
  record.internal_id = step.internal_id;
  record.cache_hit = true;

  for (size_t i = 0; i < created->size(); ++i) {
    record.outputs.push_back((*created)[i]);
    BindResult(step.output_names[i],
               ResultEntry{(*created)[i], step.internal_id});
  }
  interp_->SetVar("status", "0");
  if (step.user_id > 0) {
    MarkStepCompleted(StepKey(step.scope, step.user_id));
  }
  if (checker_ != nullptr) {
    int64_t token = -(++cache_token_seq_);
    checker_->OnDispatch(token, step.scope, step.name, step.output_names);
    checker_->OnSettle(token);
  }

  // Stage the derivation for the session cache so later probes in this
  // session hit locally. The content key is left empty: a shared hit is
  // never republished back into the store it came from.
  StagedCacheEntry staged;
  staged.internal_id = step.internal_id;
  cache::CacheEntry& ce = staged.entry;
  ce.tool = step.tool;
  ce.tool_version = tool_version;
  ce.canonical_options = cache::DerivationCache::CanonicalizeOptions(
      step.options, step.input_names, step.output_names);
  // Same formula as DispatchStep: Restore() re-derives the entry's key
  // from these fields after a daemon restart, so the salt must be real.
  ce.seed_salt = invocation_.seed ^
                 Fnv1a(step.scope + step.name + ce.canonical_options);
  ce.inputs = input_ids;
  for (const oct::ObjectId& id : *created) {
    ce.outputs.push_back(cache::CachedOutput{id, true});
  }
  ce.cost_micros = fetched->cost_micros;
  staged.key = cache_key;
  staged_cache_.push_back(std::move(staged));

  step_records_.push_back(record);
  ++steps_elided_;
  mgr_->c_steps_elided_->Increment();
  if (obs::TraceRecorder* tr = trace()) {
    NameStepTrack(step);
    tr->Instant(trace_pid(), step.internal_id, "cas_hit", "cache",
                {obs::TraceArg::Str("step", step.name),
                 obs::TraceArg::Int("micros_saved", fetched->cost_micros)});
  }
  if (observer_ != nullptr) {
    observer_->OnCacheHit(step.name, fetched->cost_micros);
    observer_->OnStepCompleted(record);
  }
  return true;
}

bool Execution::RequeueEnvironmental(const ResolvedStep& step) {
  if (step.attempt >= invocation_.max_step_retries) return false;
  PendingRetry retry;
  retry.step = step;
  retry.step.attempt = step.attempt + 1;
  // Exponential backoff in virtual time, capped so the shift stays sane.
  int shift = std::min(step.attempt, 20);
  retry.backoff_micros = invocation_.retry_backoff_micros << shift;
  retry.ready_micros =
      mgr_->network_->clock()->NowMicros() + retry.backoff_micros;
  backoff_micros_total_ += retry.backoff_micros;
  mgr_->h_retry_backoff_->Observe(retry.backoff_micros);
  if (obs::TraceRecorder* tr = trace()) {
    tr->Instant(
        trace_pid(), step.internal_id, "retry_scheduled", "step",
        {obs::TraceArg::Str("step", step.name),
         obs::TraceArg::Int("attempt", retry.step.attempt),
         obs::TraceArg::Int("backoff_micros", retry.backoff_micros)});
  }
  retry_queue_.push_back(std::move(retry));
  return true;
}

bool Execution::DispatchDueRetries() {
  bool dispatched = false;
  int64_t now = mgr_->network_->clock()->NowMicros();
  for (size_t i = 0; i < retry_queue_.size();) {
    if (retry_queue_[i].ready_micros > now) {
      ++i;
      continue;
    }
    PendingRetry retry = std::move(retry_queue_[i]);
    retry_queue_.erase(retry_queue_.begin() + i);
    Status st = DispatchStep(retry.step);
    if (st.IsUnavailable()) {
      // No host could take the process (e.g. a crash took the home node
      // down): the step was *not* re-dispatched, so it must not count as
      // a retry — it goes back on the backoff queue and is counted when a
      // dispatch actually happens. Counting here *and* on the eventual
      // successful pop double-counted papyrus.steps.retried after a host
      // crash.
      if (!RequeueEnvironmental(retry.step)) {
        FailStep(retry.step, cadtools::kToolExitTransient,
                 st.message() + " (retries exhausted)", now,
                 sprite::kNoHost);
        return true;
      }
      continue;
    }
    ++steps_retried_;
    mgr_->c_steps_retried_->Increment();
    if (obs::TraceRecorder* tr = trace()) {
      tr->Instant(trace_pid(), retry.step.internal_id, "retry", "step",
                  {obs::TraceArg::Str("step", retry.step.name),
                   obs::TraceArg::Int("attempt", retry.step.attempt)});
    }
    if (observer_ != nullptr) {
      observer_->OnStepRetried(retry.step.name, retry.step.attempt,
                               retry.backoff_micros);
    }
    if (!st.ok()) {
      pending_abort_ = true;
      abort_status_ = st;
      return true;
    }
    dispatched = true;
  }
  // A re-dispatch can be served from the cache (another execution may
  // have committed the derivation meanwhile), cascading readiness.
  if (dispatched) DrainReady();
  return dispatched;
}

void Execution::FailStep(const ResolvedStep& step, int exit_status,
                         const std::string& message,
                         int64_t dispatch_micros, sprite::HostId host) {
  interp_->SetVar("status", std::to_string(exit_status));
  StepRecord record;
  record.step_name = step.name;
  record.tool = step.tool;
  record.invocation =
      step.tool + (step.options.empty() ? "" : " " + step.options);
  record.dispatch_micros = dispatch_micros;
  record.completion_micros = mgr_->network_->clock()->NowMicros();
  record.host = host;
  record.exit_status = exit_status;
  record.message = message;
  record.internal_id = step.internal_id;
  step_records_.push_back(record);
  mgr_->c_steps_failed_->Increment();
  if (obs::TraceRecorder* tr = trace()) {
    // No process ever ran for this failure, so there is no open span to
    // close — record the failure as an instant on the step's track.
    NameStepTrack(step);
    tr->Instant(trace_pid(), step.internal_id, "step_failed", "step",
                {obs::TraceArg::Str("step", step.name),
                 obs::TraceArg::Int("exit_status", exit_status)});
  }
  if (observer_ != nullptr) observer_->OnStepCompleted(record);
  any_failed_ = true;
  if (!failure_messages_.empty()) failure_messages_ += "; ";
  failure_messages_ += message;
  HandleStepFailure(step);
}

void Execution::OnProcessLost(const sprite::ProcessInfo& pinfo) {
  base::AssertEngineThread("Execution::OnProcessLost");
  auto it = active_.find(pinfo.pid);
  if (it == active_.end()) return;
  ActiveEntry entry = std::move(it->second);
  active_.erase(it);
  mgr_->pid_router_.erase(pinfo.pid);
  // The tool "never ran": drop the speculative result and every side
  // effect it captured, exactly as serial execution (which would only
  // now have run the payload) produces nothing for a lost step.
  if (entry.job_id != 0) mgr_->executor_->Discard(entry.job_id);
  if (checker_ != nullptr) checker_->OnSettle(pinfo.pid);
  ++steps_lost_;
  mgr_->c_steps_lost_->Increment();
  if (obs::TraceRecorder* tr = trace()) {
    tr->End(trace_pid(), entry.step.internal_id,
            {obs::TraceArg::Bool("lost", true),
             obs::TraceArg::Int("host", pinfo.current_host)});
  }
  if (observer_ != nullptr) {
    observer_->OnHostFailed(pinfo.current_host, entry.step.name);
  }
  // A lost step is an environmental failure: the tool never ran, so there
  // is nothing to undo — re-dispatch on a surviving host with backoff.
  if (RequeueEnvironmental(entry.step)) return;
  FailStep(entry.step, cadtools::kToolExitTransient,
           entry.step.tool + ": host " +
               std::to_string(pinfo.current_host) +
               " crashed (retries exhausted)",
           entry.dispatch_micros, pinfo.current_host);
}

int64_t Execution::NextRetryMicros() const {
  int64_t best = std::numeric_limits<int64_t>::max();
  for (const PendingRetry& retry : retry_queue_) {
    best = std::min(best, retry.ready_micros);
  }
  return best;
}

void Execution::OnProcessComplete(const sprite::ProcessInfo& pinfo) {
  base::AssertEngineThread("Execution::OnProcessComplete");
  auto it = active_.find(pinfo.pid);
  if (it == active_.end()) return;
  ActiveEntry entry = std::move(it->second);
  active_.erase(it);
  mgr_->pid_router_.erase(pinfo.pid);
  if (checker_ != nullptr) checker_->OnSettle(pinfo.pid);

  auto tool = mgr_->tools_->Find(entry.step.tool);
  if (!tool.ok()) {
    if (entry.job_id != 0) mgr_->executor_->Discard(entry.job_id);
    if (obs::TraceRecorder* tr = trace()) {
      tr->End(trace_pid(), entry.step.internal_id,
              {obs::TraceArg::Str("error", tool.status().message())});
    }
    pending_abort_ = true;
    abort_status_ = tool.status();
    return;
  }

  // The simulated process has "finished computing": consume the actual
  // transformation. The input validity loop runs unchanged — Get both
  // revalidates each input at completion time and updates its access
  // time, exactly as serial execution does — but the payloads a worker
  // used are the dispatch-time snapshots (identical by single-assignment
  // update whenever Get succeeds here).
  cadtools::ToolRunContext ctx;
  ctx.options = cadtools::ToolOptions::Parse(
      SplitWhitespace(entry.step.options));
  ctx.seed = invocation_.seed ^
             Fnv1a(entry.step.scope + entry.step.name + entry.step.options);
  ctx.attempt = entry.step.attempt;
  bool inputs_ok = true;
  for (const oct::ObjectId& id : entry.input_ids) {
    auto rec = mgr_->db_->Get(id);
    if (!rec.ok()) {
      inputs_ok = false;
      break;
    }
    ctx.inputs.push_back(&(*rec)->payload);
    ctx.input_names.push_back(id.name);
  }
  cadtools::ToolRunResult res;
  if (!inputs_ok) {
    // Serial execution would have failed before running the tool; the
    // speculative result (if any) is dropped with its captured effects.
    if (entry.job_id != 0) mgr_->executor_->Discard(entry.job_id);
    res = cadtools::ToolRunResult::Fail(
        2, entry.step.tool + ": input object disappeared");
  } else if (entry.job_id != 0) {
    // Commit funnel: collect the (possibly worker-computed) result and
    // replay its captured observability effects, here on the engine
    // thread at the virtual completion event.
    res = mgr_->executor_->Take(entry.job_id);
  } else {
    res = (*tool)->Run(ctx);
  }
  if (res.exit_status == 0 &&
      res.outputs.size() != entry.step.output_names.size()) {
    res = cadtools::ToolRunResult::Fail(
        3, entry.step.tool + ": produced " +
               std::to_string(res.outputs.size()) + " outputs, template " +
               "declares " +
               std::to_string(entry.step.output_names.size()));
  }

  if (res.exit_status != 0 && res.transient) {
    // Transient tool failure (EX_TEMPFAIL): retry with backoff instead of
    // surfacing the failure to the template. No StepRecord is written for
    // the failed attempt; only exhausted retries become visible.
    if (RequeueEnvironmental(entry.step)) {
      if (obs::TraceRecorder* tr = trace()) {
        tr->End(trace_pid(), entry.step.internal_id,
                {obs::TraceArg::Bool("transient", true),
                 obs::TraceArg::Int("exit_status", res.exit_status)});
      }
      return;
    }
    res.message += " (retries exhausted)";
  }

  interp_->SetVar("status", std::to_string(res.exit_status));

  StepRecord record;
  record.step_name = entry.step.name;
  record.tool = entry.step.tool;
  record.invocation = entry.step.tool +
                      (entry.step.options.empty()
                           ? ""
                           : " " + entry.step.options);
  record.inputs = entry.input_ids;
  record.dispatch_micros = entry.dispatch_micros;
  record.completion_micros = pinfo.finish_micros;
  record.host = pinfo.current_host;
  record.exit_status = res.exit_status;
  record.message = res.message;
  record.internal_id = entry.step.internal_id;

  if (res.exit_status == 0) {
    oct::Transaction txn(mgr_->db_);
    for (size_t i = 0; i < res.outputs.size(); ++i) {
      txn.StageCreate(entry.step.output_names[i],
                      std::move(res.outputs[i]), entry.step.tool);
    }
    auto created = txn.Commit();
    if (!created.ok()) {
      pending_abort_ = true;
      abort_status_ = created.status();
      return;
    }
    for (size_t i = 0; i < created->size(); ++i) {
      BindResult(entry.step.output_names[i],
                 ResultEntry{(*created)[i], entry.step.internal_id});
    }
    record.outputs = *created;
    if (entry.step.user_id > 0) {
      MarkStepCompleted(StepKey(entry.step.scope, entry.step.user_id));
    }
    if (mgr_->cache_ != nullptr && entry.have_cache_key) {
      // Stage this derivation for the cache; it is recorded only if the
      // task commits and no restart unwinds past this step. The key
      // parts were canonicalized once at dispatch (ActiveEntry).
      StagedCacheEntry staged;
      staged.internal_id = entry.step.internal_id;
      cache::CacheEntry& ce = staged.entry;
      ce.tool = entry.step.tool;
      ce.tool_version = (*tool)->descriptor().version;
      ce.canonical_options = std::move(entry.canonical_options);
      ce.seed_salt = entry.seed_salt;
      ce.content_key = std::move(entry.content_key);
      ce.inputs = entry.input_ids;
      for (const oct::ObjectId& id : *created) {
        ce.outputs.push_back(cache::CachedOutput{id, true});
      }
      ce.cost_micros =
          record.completion_micros - record.dispatch_micros;
      staged.key = std::move(entry.cache_key);
      staged_cache_.push_back(std::move(staged));
    }
    step_records_.push_back(record);
    mgr_->c_steps_completed_->Increment();
    mgr_->h_step_latency_->Observe(record.completion_micros -
                                   record.dispatch_micros);
    if (obs::TraceRecorder* tr = trace()) {
      tr->End(trace_pid(), entry.step.internal_id,
              {obs::TraceArg::Int("exit_status", 0),
               obs::TraceArg::Int("host", pinfo.current_host)});
    }
    if (observer_ != nullptr) observer_->OnStepCompleted(record);
    DrainReady();
    return;
  }

  // Step failed.
  step_records_.push_back(record);
  mgr_->c_steps_failed_->Increment();
  mgr_->h_step_latency_->Observe(record.completion_micros -
                                 record.dispatch_micros);
  if (obs::TraceRecorder* tr = trace()) {
    tr->End(trace_pid(), entry.step.internal_id,
            {obs::TraceArg::Int("exit_status", res.exit_status),
             obs::TraceArg::Str("message", res.message)});
  }
  if (observer_ != nullptr) observer_->OnStepCompleted(record);
  any_failed_ = true;
  if (!failure_messages_.empty()) failure_messages_ += "; ";
  failure_messages_ += res.message;
  HandleStepFailure(entry.step);
}

void Execution::HandleStepFailure(const ResolvedStep& step) {
  // Papyrus policy (documented divergence, DESIGN.md): a failed step
  // triggers an automatic restart only when it carries an explicit
  // ResumedStep field. Otherwise the failure is surfaced through the Tcl
  // `$status` variable and the template decides; a task that can no longer
  // make progress aborts at finalization.
  if (!step.has_explicit_resumed) return;
  if (step.resumed_user_id == 0) {
    ScheduleRestart(-1);
    return;
  }
  auto it = key_internal_ids_.find(
      StepKey(step.scope, step.resumed_user_id));
  if (it == key_internal_ids_.end()) {
    pending_abort_ = true;
    abort_status_ = Status::InvalidArgument(
        "step " + step.name + " names resumed step " +
        std::to_string(step.resumed_user_id) + " which was never issued");
    return;
  }
  ScheduleRestart(it->second);
}

void Execution::ScheduleRestart(int resumed_internal_id) {
  // Keep the earliest (smallest) restart target if several failures race.
  if (pending_restart_.has_value()) {
    pending_restart_ = std::min(*pending_restart_, resumed_internal_id);
  } else {
    pending_restart_ = resumed_internal_id;
  }
}

void Execution::DoRestart(int j) {
  base::AssertEngineThread("Execution::DoRestart");
  pending_restart_.reset();
  ++restarts_;
  mgr_->c_task_restarts_->Increment();
  any_failed_ = false;
  if (obs::TraceRecorder* tr = trace()) {
    tr->Instant(trace_pid(), 0, "task_restart", "task",
                {obs::TraceArg::Int("resumed_internal_id", j),
                 obs::TraceArg::Int("restarts", restarts_)});
  }
  if (observer_ != nullptr) {
    observer_->OnTaskRestarted(template_->name, j);
  }
  // §4.3.4 undo: kill active processes, drop suspended steps, remove
  // Result entries and history records created by steps with internal ID
  // greater than J.
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second.step.internal_id > j) {
      (void)mgr_->network_->Kill(it->first);
      mgr_->pid_router_.erase(it->first);
      if (it->second.job_id != 0) {
        mgr_->executor_->Discard(it->second.job_id);
      }
      if (checker_ != nullptr) checker_->OnSettle(it->first);
      if (obs::TraceRecorder* tr = trace()) {
        tr->End(trace_pid(), it->second.step.internal_id,
                {obs::TraceArg::Bool("killed", true)});
      }
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  // Collect surviving pending steps, then rebuild the ready-set index
  // from scratch: result_ entries removed below can re-block steps whose
  // unsatisfied counts were already credited.
  std::vector<ResolvedStep> survivors;
  for (auto& [seq, s] : suspended_) {
    if (s.step.internal_id <= j) survivors.push_back(std::move(s.step));
  }
  for (ResolvedStep& s : ready_queue_) {
    if (s.internal_id <= j) survivors.push_back(std::move(s));
  }
  suspended_.clear();
  ready_queue_.clear();
  input_waiters_.clear();
  dep_waiters_.clear();
  retry_queue_.erase(
      std::remove_if(retry_queue_.begin(), retry_queue_.end(),
                     [j](const PendingRetry& r) {
                       return r.step.internal_id > j;
                     }),
      retry_queue_.end());
  staged_cache_.erase(
      std::remove_if(staged_cache_.begin(), staged_cache_.end(),
                     [j](const StagedCacheEntry& s) {
                       return s.internal_id > j;
                     }),
      staged_cache_.end());
  for (auto it = result_.begin(); it != result_.end();) {
    if (it->second.creating_internal_id > j) {
      // Undo: hide what this attempt created — but a version bound from
      // the cache belongs to committed history; only re-hide it when the
      // hit rematerialized it.
      if (!it->second.reused || it->second.restored_visibility) {
        (void)mgr_->db_->MarkInvisible(it->second.id);
      }
      it = result_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = key_internal_ids_.begin();
       it != key_internal_ids_.end();) {
    if (it->second > j) {
      completed_keys_.erase(it->first);
      it = key_internal_ids_.erase(it);
    } else {
      ++it;
    }
  }
  step_records_.erase(
      std::remove_if(step_records_.begin(), step_records_.end(),
                     [j](const StepRecord& r) { return r.internal_id > j; }),
      step_records_.end());
  interp_->SetVar("status", "0");
  // Re-index the survivors against the post-undo Result list; anything
  // (still) ready dispatches below rather than waiting for an event.
  for (ResolvedStep& s : survivors) ParkStep(std::move(s));
  DrainReady();

  // Rebuild the interpretation stack so the next command interpreted is
  // the (J+1)-th — §4.3.4.
  stack_.clear();
  if (j < 0) {
    // Full restart: fresh interpreter, from the beginning.
    ResetInterp();
    stack_.push_back(StackEntry{root_ctx_, 1});
    current_frame_ = root_ctx_;
    return;
  }
  const StreamEntry& entry = stream_[j];
  std::vector<std::shared_ptr<FrameCtx>> chain;
  for (std::shared_ptr<FrameCtx> c = entry.ctx; c != nullptr;
       c = c->parent) {
    chain.push_back(c);
  }
  std::reverse(chain.begin(), chain.end());  // root .. leaf
  for (size_t i = 0; i < chain.size(); ++i) {
    size_t idx = (i + 1 < chain.size()) ? chain[i + 1]->push_site_idx + 1
                                        : entry.idx + 1;
    stack_.push_back(StackEntry{chain[i], idx});
  }
  current_frame_ = entry.ctx;
}

void Execution::AbortTask(Status status) {
  base::AssertEngineThread("Execution::AbortTask");
  pending_abort_ = false;
  pending_restart_.reset();
  for (const auto& [pid, entry] : active_) {
    (void)mgr_->network_->Kill(pid);
    mgr_->pid_router_.erase(pid);
    if (entry.job_id != 0) mgr_->executor_->Discard(entry.job_id);
    if (checker_ != nullptr) checker_->OnSettle(pid);
    if (obs::TraceRecorder* tr = trace()) {
      tr->End(trace_pid(), entry.step.internal_id,
              {obs::TraceArg::Bool("killed", true)});
    }
  }
  active_.clear();
  suspended_.clear();
  ready_queue_.clear();
  input_waiters_.clear();
  dep_waiters_.clear();
  retry_queue_.clear();
  staged_cache_.clear();  // an aborted task never populates the cache
  // Remove all side effects: every object the task created becomes
  // invisible (§3.3.1 "deletes" via visibility). Versions bound from the
  // cache belong to committed history and are only re-hidden when the hit
  // had rematerialized them.
  for (const auto& [name, entry] : result_) {
    if (entry.creating_internal_id >= 0 &&
        (!entry.reused || entry.restored_visibility)) {
      (void)mgr_->db_->MarkInvisible(entry.id);
    }
  }
  result_status_ = status.ok()
                       ? Status::Aborted("task aborted")
                       : status;
  if (checker_ != nullptr) {
    mgr_->c_flow_violations_->Increment(checker_->violations());
  }
  done_ = true;
  mgr_->c_tasks_aborted_->Increment();
  if (obs::TraceRecorder* tr = trace()) {
    tr->End(trace_pid(), 0,
            {obs::TraceArg::Bool("aborted", true),
             obs::TraceArg::Str("status", result_status_.message())});
  }
}

void Execution::Commit() {
  base::AssertEngineThread("Execution::Commit");
  TaskHistoryRecord record;
  record.task_name = template_->name;
  record.inputs = invocation_.inputs;
  for (const std::string& out_name : invocation_.output_names) {
    auto it = result_.find(out_name);
    if (it == result_.end()) {
      AbortTask(Status::Aborted("task output \"" + out_name +
                                "\" was never produced"));
      return;
    }
    record.outputs.push_back(it->second.id);
  }
  // Discard intermediates: only the task's declared inputs and outputs
  // stay visible after commit (§3.3.2).
  std::set<std::string> keep(invocation_.output_names.begin(),
                             invocation_.output_names.end());
  for (const oct::ObjectId& id : invocation_.inputs) keep.insert(id.name);
  for (const auto& [name, entry] : result_) {
    if (entry.creating_internal_id < 0 || keep.count(name) != 0) continue;
    // Reused versions: re-hide only those the cache hit rematerialized;
    // ones that stayed visible are some earlier task's committed outputs.
    if (entry.reused && !entry.restored_visibility) continue;
    (void)mgr_->db_->MarkInvisible(entry.id);
  }
  // Populate the derivation cache, now that intermediate visibility is
  // final (Record snapshots it). Executed steps and shared-store hits
  // were staged; session-cache hits and failed/unwound attempts never
  // were.
  if (mgr_->cache_ != nullptr) {
    for (StagedCacheEntry& staged : staged_cache_) {
      (void)mgr_->cache_->Record(staged.key, std::move(staged.entry));
    }
  }
  staged_cache_.clear();
  record.steps = step_records_;
  record.invoke_micros = invoke_micros_;
  record.commit_micros = mgr_->network_->clock()->NowMicros();
  record.restarts = restarts_;
  record.steps_lost = steps_lost_;
  record.steps_retried = steps_retried_;
  record.backoff_micros_total = backoff_micros_total_;
  record.steps_elided = steps_elided_;
  record_ = std::move(record);
  result_status_ = Status::OK();
  if (checker_ != nullptr) {
    mgr_->c_flow_violations_->Increment(checker_->violations());
  }
  done_ = true;
  mgr_->c_tasks_committed_->Increment();
  if (obs::TraceRecorder* tr = trace()) {
    tr->End(trace_pid(), 0,
            {obs::TraceArg::Int("restarts", restarts_),
             obs::TraceArg::Int("steps_elided", steps_elided_)});
  }
}

void Execution::OnDeadlock() {
  std::string names;
  for (const auto& [seq, s] : suspended_) names += " " + s.step.name;
  AbortTask(Status::Aborted(
      "task deadlocked; unsatisfiable steps:" + names +
      (failure_messages_.empty() ? ""
                                 : "; failures: " + failure_messages_)));
}

Result<TaskHistoryRecord> Execution::TakeResult() {
  if (!done_) return Status::Internal("execution still in progress");
  if (!result_status_.ok()) return result_status_;
  return std::move(*record_);
}

}  // namespace internal

TaskManager::TaskManager(oct::OctDatabase* db,
                         const cadtools::ToolRegistry* tools,
                         sprite::Network* network,
                         const tdl::TemplateLibrary* templates)
    : db_(db), tools_(tools), network_(network), templates_(templates) {
  base::AssertEngineThread("TaskManager::TaskManager");
  executor_ = std::make_unique<StepExecutor>();
  executor_->set_worker_threads(DefaultWorkerThreads());
  owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
  obs_.metrics = owned_metrics_.get();
  BindMetrics(obs_.metrics);
  network_->SetCompletionHandler([this](const sprite::ProcessInfo& p) {
    auto it = pid_router_.find(p.pid);
    if (it != pid_router_.end()) it->second->OnProcessComplete(p);
  });
  network_->SetFailureHandler([this](const sprite::ProcessInfo& p) {
    auto it = pid_router_.find(p.pid);
    if (it != pid_router_.end()) it->second->OnProcessLost(p);
  });
}

TaskManager::~TaskManager() = default;

void TaskManager::set_observability(const obs::Observability& obs) {
  base::AssertEngineThread("TaskManager::set_observability");
  obs_.trace = obs.trace;
  if (obs.metrics != nullptr && obs.metrics != obs_.metrics) {
    BindMetrics(obs.metrics);
    obs_.metrics = obs.metrics;
  }
}

void TaskManager::BindMetrics(obs::MetricsRegistry* registry) {
  base::AssertEngineThread("TaskManager::BindMetrics");
  auto rebind = [registry](obs::Counter*& c, const char* name) {
    obs::Counter* fresh = registry->FindOrCreateCounter(name);
    // Carry accumulated statistics into the new registry so the
    // accessors stay monotonic across a rebind.
    if (c != nullptr && c != fresh) fresh->Increment(c->value());
    c = fresh;
  };
  rebind(c_tasks_committed_, obs::kTasksCommitted);
  rebind(c_tasks_aborted_, obs::kTasksAborted);
  rebind(c_task_restarts_, obs::kTaskRestarts);
  rebind(c_steps_completed_, obs::kStepsCompleted);
  rebind(c_steps_failed_, obs::kStepsFailed);
  rebind(c_remigrations_, obs::kSpriteRemigrations);
  rebind(c_steps_lost_, obs::kStepsLost);
  rebind(c_steps_retried_, obs::kStepsRetried);
  rebind(c_flow_violations_, obs::kFlowViolations);
  rebind(c_steps_elided_, obs::kStepsElided);
  rebind(c_attrs_computed_, obs::kAttributesComputed);
  rebind(c_attrs_cached_, obs::kAttributesCached);
  // Histogram observations are not carried over; rebind before invoking.
  h_step_latency_ = registry->FindOrCreateHistogram(
      obs::kStepVirtualLatency, obs::LatencyBucketBounds());
  h_retry_backoff_ = registry->FindOrCreateHistogram(
      obs::kStepRetryBackoff, obs::LatencyBucketBounds());
  executor_->BindMetrics(registry);
}

void TaskManager::set_worker_threads(int n) {
  base::AssertEngineThread("TaskManager::set_worker_threads");
  executor_->set_worker_threads(n);
}

int TaskManager::worker_threads() const {
  return executor_->worker_threads();
}

Result<TaskHistoryRecord> TaskManager::Invoke(
    const TaskInvocation& invocation, TaskObserver* observer) {
  internal::Execution exec(this, invocation, observer,
                           next_execution_id_++);
  PAPYRUS_RETURN_IF_ERROR(exec.Init());
  std::vector<internal::Execution*> execs = {&exec};
  DriveAll(execs);
  return exec.TakeResult();
}

std::vector<Result<TaskHistoryRecord>> TaskManager::InvokeMany(
    const std::vector<TaskInvocation>& invocations,
    const std::vector<TaskObserver*>& observers) {
  std::vector<std::unique_ptr<internal::Execution>> owned;
  std::vector<internal::Execution*> execs;
  std::vector<Result<TaskHistoryRecord>> results;
  std::vector<Status> init_errors(invocations.size(), Status::OK());
  for (size_t i = 0; i < invocations.size(); ++i) {
    TaskObserver* obs = i < observers.size() ? observers[i] : nullptr;
    auto exec = std::make_unique<internal::Execution>(
        this, invocations[i], obs, next_execution_id_++);
    init_errors[i] = exec->Init();
    if (init_errors[i].ok()) {
      execs.push_back(exec.get());
    }
    owned.push_back(std::move(exec));
  }
  DriveAll(execs);
  for (size_t i = 0; i < invocations.size(); ++i) {
    if (!init_errors[i].ok()) {
      results.push_back(init_errors[i]);
    } else {
      results.push_back(owned[i]->TakeResult());
    }
  }
  return results;
}

void TaskManager::DriveAll(std::vector<internal::Execution*>& executions) {
  while (true) {
    bool progress = false;
    bool all_done = true;
    for (internal::Execution* exec : executions) {
      if (exec->done()) continue;
      if (exec->Advance()) progress = true;
      if (!exec->done()) all_done = false;
    }
    if (all_done) break;
    if (progress) continue;
    TryRemigration();
    if (network_->Step()) continue;
    // The network has no events left, but a backed-off retry may still be
    // waiting on virtual time: jump the clock to the earliest one.
    int64_t next_retry = std::numeric_limits<int64_t>::max();
    for (internal::Execution* exec : executions) {
      if (!exec->done()) {
        next_retry = std::min(next_retry, exec->NextRetryMicros());
      }
    }
    if (next_retry != std::numeric_limits<int64_t>::max()) {
      if (next_retry > network_->clock()->NowMicros()) {
        network_->clock()->SetMicros(next_retry);
      }
      continue;
    }
    // Nothing can move: deadlock.
    for (internal::Execution* exec : executions) {
      if (!exec->done()) exec->OnDeadlock();
    }
  }
}

void TaskManager::TryRemigration() {
  sprite::HostId home = network_->home_host();
  // Snapshot pids first: migration mutates no routing, but be safe.
  std::vector<std::pair<sprite::ProcessId, internal::Execution*>> pids(
      pid_router_.begin(), pid_router_.end());
  for (const auto& [pid, exec] : pids) {
    if (!exec->remigration()) continue;
    auto info = network_->GetProcess(pid);
    if (!info.ok() || info->state != sprite::ProcessState::kRunning) {
      continue;
    }
    if (!info->migratable || info->current_host != home) continue;
    // Only worth moving when the home node is contended (§4.3.3).
    if (!network_->IsOwnerActive(home) && network_->LoadOf(home) < 2) {
      continue;
    }
    auto idle = network_->FindIdleHost(/*exclude_home=*/true);
    if (!idle.ok()) continue;
    // The move must strictly improve this process's situation; otherwise
    // processes just pile up on the least-loaded remote node.
    if (!network_->IsOwnerActive(home) &&
        network_->LoadOf(*idle) + 1 >= network_->LoadOf(home)) {
      continue;
    }
    if (network_->Migrate(pid, *idle).ok()) {
      c_remigrations_->Increment();
    }
  }
}

}  // namespace papyrus::task
