#ifndef PAPYRUS_TASK_PROGRESS_VIEW_H_
#define PAPYRUS_TASK_PROGRESS_VIEW_H_

#include <map>
#include <string>
#include <vector>

#include "task/task_manager.h"
#include "tdl/template.h"
#include "tdl/template_layout.h"

namespace papyrus::task {

/// A textual stand-in for the Figure 4.4 task-manager window: tracks the
/// execution status of every step of an invoked template and renders a
/// progress display. Attach it as the invocation's observer.
///
/// Status colors of the thesis map to markers:
///   white (not started)  ->  [ ]
///   red   (running)      ->  [>]
///   green (completed)    ->  [x]
///   failed               ->  [!]
///
/// Threading: the view keeps no lock. Per the TaskObserver contract
/// (task_manager.h) every callback fires synchronously on the thread
/// driving the engine, so the state maps are only ever mutated from that
/// thread; call Render() and the accessors from the same thread (between
/// Invoke calls, or from inside a callback). Rendering concurrently from
/// another thread would race the message log and is not supported.
class ProgressView : public TaskObserver {
 public:
  /// Pre-populates the step list by statically scanning the template
  /// (subtasks expanded when `library` is given).
  ProgressView(const tdl::TaskTemplate& tmpl,
               const tdl::TemplateLibrary* library);

  // TaskObserver:
  void OnStepReady(const std::string& step_name, int restart_count,
                   std::string* options) override;
  void OnStepCompleted(const StepRecord& record) override;
  void OnTaskRestarted(const std::string& task_name,
                       int resumed_internal_id) override;

  /// Renders the current status, one level per line (§4.3.1 layout), plus
  /// the message log tail (the bottom window of Figure 4.4).
  std::string Render() const;

  /// The man page for a tool, as shown by the "Show Man Page" button.
  static std::string ManPage(const cadtools::ToolRegistry& tools,
                             const std::string& tool_name);

  int completed_steps() const;
  int failed_steps() const;
  int restarts() const { return restarts_; }
  const std::vector<std::string>& messages() const { return messages_; }

 private:
  enum class State { kPending, kRunning, kCompleted, kFailed };

  std::string task_name_;
  std::vector<tdl::StaticStep> steps_;
  tdl::TemplateLayout layout_;
  std::map<std::string, State> states_;
  std::vector<std::string> messages_;
  int restarts_ = 0;
};

}  // namespace papyrus::task

#endif  // PAPYRUS_TASK_PROGRESS_VIEW_H_
