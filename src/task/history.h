#ifndef PAPYRUS_TASK_HISTORY_H_
#define PAPYRUS_TASK_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "oct/object_id.h"
#include "sprite/network.h"

namespace papyrus::task {

/// The recorded execution of one design step (one CAD tool invocation).
struct StepRecord {
  std::string step_name;
  std::string tool;
  /// The actual invocation: tool name plus final options, with formal
  /// object names replaced by the actual names operated on.
  std::string invocation;
  std::vector<oct::ObjectId> inputs;
  std::vector<oct::ObjectId> outputs;
  int64_t dispatch_micros = 0;
  int64_t completion_micros = 0;
  sprite::HostId host = sprite::kNoHost;
  int exit_status = 0;
  std::string message;
  /// Issue-order id inside the task run (drives §4.3.4 undo).
  int internal_id = -1;
  /// True when the step was elided by the derivation cache: no tool
  /// process ran, the outputs are the recorded versions of an earlier
  /// committed execution.
  bool cache_hit = false;
};

/// The history record of one committed design task (§4.3.5): the linear
/// sequence of executed steps ordered by completion time, plus the task's
/// own input/output objects. The task manager packages one of these per
/// successful invocation and hands it to the activity manager, which
/// appends it to the design thread's control stream.
struct TaskHistoryRecord {
  std::string task_name;
  std::vector<oct::ObjectId> inputs;
  std::vector<oct::ObjectId> outputs;
  std::vector<StepRecord> steps;  // completion-time order
  int64_t invoke_micros = 0;
  int64_t commit_micros = 0;
  int restarts = 0;  // programmable-abort restarts during the run
  // Environmental-failure accounting, kept separate from `restarts`
  // (programmable aborts are design decisions; these are infrastructure).
  int64_t steps_lost = 0;     // step processes killed by host crashes
  int64_t steps_retried = 0;  // re-dispatches after loss/transient failure
  int64_t backoff_micros_total = 0;  // virtual time spent backing off
  /// Steps served from the derivation cache instead of executing.
  int64_t steps_elided = 0;
};

}  // namespace papyrus::task

#endif  // PAPYRUS_TASK_HISTORY_H_
