#ifndef PAPYRUS_TASK_STEP_EXECUTOR_H_
#define PAPYRUS_TASK_STEP_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "cadtools/tool.h"
#include "obs/effect_capture.h"
#include "obs/metrics.h"
#include "oct/design_data.h"

namespace papyrus::task {

/// Worker-thread count to use when SessionOptions doesn't override it:
/// the PAPYRUS_TEST_WORKERS environment variable clamped to [1, 64], or 1
/// (serial, today's contract) when unset or unparsable. CI sets the
/// variable to drive the whole test suite through the worker pool.
int DefaultWorkerThreads();

/// Runs `Tool::Run` payloads for in-flight design steps, either inline on
/// the engine thread (serial mode) or speculatively on a real worker pool
/// — while keeping every observable byte identical to serial execution.
///
/// ## Model
///
/// The discrete-event scheduler often has several steps in flight
/// concurrently *in virtual time*: dispatched, waiting for their virtual
/// completion events. Serial Papyrus runs each payload lazily at its
/// completion event. The executor instead lets the engine *submit* the
/// payload at dispatch time, as an immutable snapshot (owned copies of
/// the input payloads + the fully-built ToolRunContext scalars), so a
/// worker can compute the result while virtual time advances. At the
/// completion event the engine *takes* the result — blocking until the
/// worker finishes if it hasn't — and performs all state mutation itself.
///
/// ## Determinism
///
/// Virtual completion events fire in an order fixed by the simulation,
/// independent of wall-clock thread scheduling. Since
///  - tools are pure functions of their ToolRunContext (snapshot → same
///    result no matter when or where it runs),
///  - all mutation (OCT commits, history records, ADG edges, cache
///    staging, observer callbacks) happens on the engine thread at Take,
///    in the same order serial execution would, and
///  - observability side effects emitted during a worker-side run are
///    buffered in an EffectCapture and replayed at Take (or dropped at
///    Discard, matching serial execution where a killed step never ran),
/// histories, ADG dumps, engine counters, and snapshot bytes are
/// byte-identical for every worker count. The executor's own metrics
/// (papyrus.exec.*) describe the pool and are the one deliberate
/// exception.
///
/// ## Thread contract
///
/// Submit / Take / Discard / set_worker_threads / BindMetrics carry
/// PAPYRUS_REQUIRES(base::engine_thread). Workers touch only the job
/// table (under `mu_`, which guards all executor state) and the job
/// payload while it is in the running state; each worker thread is marked
/// with base::ScopedWorkerThread at the top of its loop, so an
/// engine-only API reached from a tool payload aborts instead of racing.
/// With worker_threads() == 1 no threads exist and Take runs the payload
/// inline at the completion event — exactly the pre-executor behavior.
/// In pool mode the engine steals still-queued jobs at Take instead of
/// waiting for a worker to pick them up.
class StepExecutor {
 public:
  StepExecutor();
  ~StepExecutor();

  StepExecutor(const StepExecutor&) = delete;
  StepExecutor& operator=(const StepExecutor&) = delete;

  /// Resizes the pool. Must be called with no jobs outstanding (between
  /// sessions or tasks); a call with jobs in flight is ignored.
  void set_worker_threads(int n)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);
  int worker_threads() const PAPYRUS_EXCLUDES(mu_) {
    // Lock-discipline fix: this used to read workers_configured_ without
    // `mu_` while set_worker_threads writes it under the lock.
    base::MutexLock lock(mu_);
    return workers_configured_;
  }

  /// Binds the executor's pool metrics (papyrus.exec.*). Engine thread,
  /// with no jobs outstanding.
  void BindMetrics(obs::MetricsRegistry* registry)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  /// Snapshots one step's tool invocation and enqueues it. `tool` is
  /// borrowed and must outlive the job. Returns a nonzero job id.
  uint64_t Submit(const cadtools::Tool* tool,
                  std::vector<oct::DesignPayload> inputs,
                  std::vector<std::string> input_names,
                  cadtools::ToolOptions options, uint64_t seed,
                  int attempt)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  /// Consumes a job at its virtual completion event: runs it inline if no
  /// worker has it (serial mode, or pool steal), otherwise waits for the
  /// worker, then replays the job's captured observability effects and
  /// returns the result. The job id becomes invalid.
  cadtools::ToolRunResult Take(uint64_t job_id)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  /// Drops a job whose step will never complete (host crash, task abort,
  /// programmable-abort unwind): the result and every captured side
  /// effect are discarded, as if the tool had never run.
  void Discard(uint64_t job_id)
      PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);

  /// Jobs submitted but not yet taken or discarded.
  size_t pending() const PAPYRUS_EXCLUDES(mu_);

 private:
  struct Job {
    const cadtools::Tool* tool = nullptr;
    std::vector<oct::DesignPayload> inputs;
    std::vector<std::string> input_names;
    cadtools::ToolOptions options;
    uint64_t seed = 0;
    int attempt = 0;

    enum class State { kQueued, kRunning, kDone };
    State state = State::kQueued;
    bool discarded = false;  // Discard arrived while a worker ran it.
    cadtools::ToolRunResult result;
    obs::EffectCapture effects;
    int64_t wall_micros = 0;
  };

  /// Runs the job's payload with `capture` installed (nullptr to apply
  /// side effects directly). Called without the executor lock held.
  static void RunJob(Job* job, obs::EffectCapture* capture);

  void WorkerLoop(int worker_index) PAPYRUS_EXCLUDES(mu_);
  void StartPoolLocked() PAPYRUS_REQUIRES(mu_, base::engine_thread);
  void StopPool() PAPYRUS_REQUIRES(base::engine_thread) PAPYRUS_EXCLUDES(mu_);
  obs::Counter* WorkerStepsCounterLocked(int worker_index)
      PAPYRUS_REQUIRES(mu_);

  mutable base::Mutex mu_;
  base::CondVar work_cv_;  // workers: queue non-empty or stop
  base::CondVar done_cv_;  // engine: a job reached kDone
  bool stop_ PAPYRUS_GUARDED_BY(mu_) = false;
  int workers_configured_ PAPYRUS_GUARDED_BY(mu_) = 1;
  /// Thread handles are engine-owned (started / joined only by the engine
  /// thread), guarded by the role, not the mutex: StopPool must join
  /// without holding `mu_`.
  std::vector<std::thread> pool_ PAPYRUS_GUARDED_BY(base::engine_thread);
  uint64_t next_job_id_ PAPYRUS_GUARDED_BY(mu_) = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Job>> jobs_
      PAPYRUS_GUARDED_BY(mu_);
  std::deque<uint64_t> queue_ PAPYRUS_GUARDED_BY(mu_);

  // Pool observability (worker-count-dependent by design; excluded from
  // the cross-worker-count determinism guarantee).
  obs::MetricsRegistry* registry_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Gauge* g_workers_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_steps_pool_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Counter* c_steps_inline_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Histogram* h_queue_depth_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  obs::Histogram* h_wall_latency_ PAPYRUS_GUARDED_BY(mu_) = nullptr;
  std::vector<obs::Counter*> worker_steps_
      PAPYRUS_GUARDED_BY(mu_);  // per worker index
};

}  // namespace papyrus::task

#endif  // PAPYRUS_TASK_STEP_EXECUTOR_H_
