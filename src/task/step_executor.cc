#include "task/step_executor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace papyrus::task {

namespace {

int64_t WallMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int DefaultWorkerThreads() {
  const char* env = std::getenv("PAPYRUS_TEST_WORKERS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  long n = std::strtol(env, &end, 10);
  if (end == env) return 1;
  if (n < 1) return 1;
  if (n > 64) return 64;
  return static_cast<int>(n);
}

StepExecutor::StepExecutor() = default;

StepExecutor::~StepExecutor() {
  // Vouch locally instead of annotating the destructor (a REQUIRES dtor
  // would propagate into every owner's, often implicit, dtor).
  base::AssertEngineThread("StepExecutor::~StepExecutor");
  StopPool();
}

void StepExecutor::set_worker_threads(int n) {
  if (n < 1) n = 1;
  if (n > 64) n = 64;
  {
    base::MutexLock lock(mu_);
    if (!jobs_.empty()) return;  // resize only between steps
    if (n == workers_configured_ && pool_.size() == (n > 1 ? size_t(n) : 0)) {
      return;
    }
  }
  StopPool();
  base::MutexLock lock(mu_);
  workers_configured_ = n;
  if (g_workers_ != nullptr) g_workers_->Set(n);
  worker_steps_.assign(static_cast<size_t>(n), nullptr);
  StartPoolLocked();
}

void StepExecutor::StartPoolLocked() {
  stop_ = false;
  if (workers_configured_ <= 1) return;
  pool_.reserve(static_cast<size_t>(workers_configured_));
  for (int i = 0; i < workers_configured_; ++i) {
    pool_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void StepExecutor::StopPool() {
  {
    base::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : pool_) t.join();
  pool_.clear();
}

void StepExecutor::BindMetrics(obs::MetricsRegistry* registry) {
  base::MutexLock lock(mu_);
  registry_ = registry;
  if (registry == nullptr) {
    g_workers_ = nullptr;
    c_steps_pool_ = nullptr;
    c_steps_inline_ = nullptr;
    h_queue_depth_ = nullptr;
    h_wall_latency_ = nullptr;
    std::fill(worker_steps_.begin(), worker_steps_.end(), nullptr);
    return;
  }
  g_workers_ = registry->FindOrCreateGauge(obs::kExecWorkers);
  g_workers_->Set(workers_configured_);
  c_steps_pool_ = registry->FindOrCreateCounter(obs::kExecStepsPool);
  c_steps_inline_ = registry->FindOrCreateCounter(obs::kExecStepsInline);
  h_queue_depth_ = registry->FindOrCreateHistogram(
      obs::kExecQueueDepth, obs::QueueDepthBucketBounds());
  h_wall_latency_ = registry->FindOrCreateHistogram(
      obs::kExecWallLatency, obs::WallLatencyBucketBounds());
  std::fill(worker_steps_.begin(), worker_steps_.end(), nullptr);
}

obs::Counter* StepExecutor::WorkerStepsCounterLocked(int worker_index) {
  if (registry_ == nullptr) return nullptr;
  auto idx = static_cast<size_t>(worker_index);
  if (idx >= worker_steps_.size()) worker_steps_.resize(idx + 1, nullptr);
  if (worker_steps_[idx] == nullptr) {
    worker_steps_[idx] = registry_->FindOrCreateCounter(
        "papyrus.exec.worker" + std::to_string(worker_index) + ".steps");
  }
  return worker_steps_[idx];
}

uint64_t StepExecutor::Submit(const cadtools::Tool* tool,
                              std::vector<oct::DesignPayload> inputs,
                              std::vector<std::string> input_names,
                              cadtools::ToolOptions options, uint64_t seed,
                              int attempt) {
  auto job = std::make_unique<Job>();
  job->tool = tool;
  job->inputs = std::move(inputs);
  job->input_names = std::move(input_names);
  job->options = std::move(options);
  job->seed = seed;
  job->attempt = attempt;

  base::MutexLock lock(mu_);
  uint64_t id = next_job_id_++;
  jobs_.emplace(id, std::move(job));
  if (workers_configured_ > 1) {
    queue_.push_back(id);
    work_cv_.notify_one();
  }
  // With one worker (serial mode) the job just parks in the table; Take
  // runs it inline at the completion event, preserving the pre-executor
  // execution point exactly.
  return id;
}

void StepExecutor::RunJob(Job* job, obs::EffectCapture* capture) {
  cadtools::ToolRunContext ctx;
  ctx.inputs.reserve(job->inputs.size());
  for (const oct::DesignPayload& p : job->inputs) ctx.inputs.push_back(&p);
  ctx.input_names = job->input_names;
  ctx.options = job->options;
  ctx.seed = job->seed;
  ctx.attempt = job->attempt;

  obs::SetCurrentEffectCapture(capture);
  int64_t start = WallMicrosNow();
  job->result = job->tool->Run(ctx);
  job->wall_micros = WallMicrosNow() - start;
  obs::SetCurrentEffectCapture(nullptr);
}

void StepExecutor::WorkerLoop(int worker_index) {
  // Mark this thread for the engine-thread role checks: an engine-only
  // API reached from a tool payload aborts here instead of racing.
  base::ScopedWorkerThread worker_mark;
  for (;;) {
    Job* job = nullptr;
    obs::Counter* steps = nullptr;
    {
      base::MutexLock lock(mu_);
      // Explicit predicate loop (not wait(lock, pred)): the analysis does
      // not see a predicate lambda as holding `mu_`.
      while (!stop_ && queue_.empty()) work_cv_.wait(lock);
      if (stop_) return;
      uint64_t id = queue_.front();
      queue_.pop_front();
      auto it = jobs_.find(id);
      // The engine may have stolen (Take) or discarded the job after it
      // was queued; stale queue entries are skipped.
      if (it == jobs_.end() || it->second->state != Job::State::kQueued) {
        continue;
      }
      job = it->second.get();
      job->state = Job::State::kRunning;
      steps = WorkerStepsCounterLocked(worker_index);
    }

    // Run outside the lock: the kRunning state gives this thread
    // exclusive ownership of the job payload. Side effects go to the
    // job's capture for replay at the virtual completion event.
    RunJob(job, &job->effects);

    {
      base::MutexLock lock(mu_);
      job->state = Job::State::kDone;
      // Pool bookkeeping applies directly (capture uninstalled): these
      // metrics describe the pool itself and are worker-count-dependent
      // by design.
      if (c_steps_pool_ != nullptr) c_steps_pool_->Increment();
      if (steps != nullptr) steps->Increment();
    }
    done_cv_.notify_all();
  }
}

cadtools::ToolRunResult StepExecutor::Take(uint64_t job_id) {
  base::MutexLock lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return cadtools::ToolRunResult::Fail(
        64, "step executor: unknown job id " + std::to_string(job_id));
  }
  Job* job = it->second.get();

  // Commit-funnel depth: speculative results (including this one) still
  // awaiting their engine-thread commit at this completion event.
  if (h_queue_depth_ != nullptr) {
    h_queue_depth_->Observe(static_cast<int64_t>(jobs_.size()));
  }

  if (job->state == Job::State::kQueued) {
    // Serial mode — or a pool steal: no worker picked the job up yet, so
    // the engine runs it inline at the completion event. No capture is
    // installed: direct side effects land exactly where serial execution
    // puts them.
    job->state = Job::State::kRunning;
    lock.unlock();
    RunJob(job, nullptr);
    lock.lock();
    job->state = Job::State::kDone;
    if (c_steps_inline_ != nullptr) c_steps_inline_->Increment();
  } else {
    while (job->state != Job::State::kDone) done_cv_.wait(lock);
  }

  if (h_wall_latency_ != nullptr) h_wall_latency_->Observe(job->wall_micros);

  cadtools::ToolRunResult result = std::move(job->result);
  obs::EffectCapture effects = std::move(job->effects);
  jobs_.erase(it);
  lock.unlock();

  // Replay the buffered observability effects on the engine thread, at
  // the virtual completion event — the instant serial execution would
  // have emitted them.
  effects.Replay();
  return result;
}

void StepExecutor::Discard(uint64_t job_id) {
  base::MutexLock lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  Job* job = it->second.get();
  if (job->state == Job::State::kRunning) {
    // A worker is mid-run; wait it out, then drop everything. (Tool
    // payloads are short compute kernels; there is no cancellation.)
    while (job->state != Job::State::kDone) done_cv_.wait(lock);
  }
  it->second->effects.Drop();
  jobs_.erase(it);
}

size_t StepExecutor::pending() const {
  base::MutexLock lock(mu_);
  return jobs_.size();
}

}  // namespace papyrus::task
