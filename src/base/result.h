#ifndef PAPYRUS_BASE_RESULT_H_
#define PAPYRUS_BASE_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "base/status.h"

namespace papyrus {

/// A value-or-error type: either holds a `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result` / `absl::StatusOr`. Use together with the
/// `PAPYRUS_ASSIGN_OR_RETURN` macro from base/macros.h:
///
/// ```
/// Result<int> ParsePort(const std::string& s);
/// ...
/// PAPYRUS_ASSIGN_OR_RETURN(int port, ParsePort(arg));
/// ```
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok());
  }
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace papyrus

#endif  // PAPYRUS_BASE_RESULT_H_
