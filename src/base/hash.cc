#include "base/hash.h"

#include <algorithm>
#include <cstring>

namespace papyrus {
namespace {

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t RotR(uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

Sha256::Sha256() { Reset(); }

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  length_bits_ = 0;
  buffered_ = 0;
}

void Sha256::Compress(const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (uint32_t{block[4 * i]} << 24) | (uint32_t{block[4 * i + 1]} << 16) |
           (uint32_t{block[4 * i + 2]} << 8) | uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = RotR(w[i - 15], 7) ^ RotR(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = RotR(w[i - 2], 17) ^ RotR(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = RotR(e, 6) ^ RotR(e, 11) ^ RotR(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
    uint32_t s0 = RotR(a, 2) ^ RotR(a, 13) ^ RotR(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::Update(std::string_view data) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  length_bits_ += uint64_t{n} * 8;
  if (buffered_ > 0) {
    size_t take = std::min(n, sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == sizeof(buffer_)) {
      Compress(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    Compress(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

std::array<uint8_t, Sha256::kDigestBytes> Sha256::Finish() {
  uint64_t length_bits = length_bits_;
  uint8_t pad = 0x80;
  Update(std::string_view(reinterpret_cast<const char*>(&pad), 1));
  static const uint8_t kZero[64] = {};
  while (buffered_ != 56) {
    size_t want = buffered_ < 56 ? 56 - buffered_ : 64 - buffered_ + 56;
    size_t take = std::min<size_t>(want, 64);
    Update(std::string_view(reinterpret_cast<const char*>(kZero), take));
  }
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<uint8_t>(length_bits >> (56 - 8 * i));
  }
  Update(std::string_view(reinterpret_cast<const char*>(len_be), 8));
  std::array<uint8_t, kDigestBytes> digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return digest;
}

std::string Sha256::FinishHex() {
  static const char kHex[] = "0123456789abcdef";
  std::array<uint8_t, kDigestBytes> digest = Finish();
  std::string hex;
  hex.reserve(2 * kDigestBytes);
  for (uint8_t byte : digest) {
    hex.push_back(kHex[byte >> 4]);
    hex.push_back(kHex[byte & 0xf]);
  }
  return hex;
}

std::string Sha256Hex(std::string_view data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.FinishHex();
}

}  // namespace papyrus
