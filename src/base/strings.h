#ifndef PAPYRUS_BASE_STRINGS_H_
#define PAPYRUS_BASE_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace papyrus {

/// Splits `s` at every occurrence of `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a base-10 signed integer; rejects trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// 64-bit FNV-1a hash; used by the mock CAD tools for deterministic
/// pseudo-random transformations.
uint64_t Fnv1a(std::string_view s);

/// Percent-encodes whitespace, '%' and control characters so arbitrary
/// strings survive the line/field-oriented persistence format.
std::string PercentEncode(std::string_view s);
/// Inverse of PercentEncode; invalid escapes are kept literally.
std::string PercentDecode(std::string_view s);

/// Strict inverse of PercentEncode: a '%' must be followed by exactly two
/// hex digits. Malformed escapes ("%G1", a trailing "%" or "%4") return
/// InvalidArgument instead of being passed through — the persistence layer
/// uses this so corrupted snapshots are detected rather than silently
/// mis-decoded.
Result<std::string> PercentDecodeStrict(std::string_view s);

}  // namespace papyrus

#endif  // PAPYRUS_BASE_STRINGS_H_
