#ifndef PAPYRUS_BASE_HASH_H_
#define PAPYRUS_BASE_HASH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace papyrus {

/// Streaming SHA-256 (FIPS 180-4). Papyrus uses it wherever a *strong*
/// content identity is needed — content-addressed store keys, blob
/// verification on re-bind — as opposed to Fnv1a, which remains the cheap
/// checksum for journal lines and mock-tool pseudo-randomness.
class Sha256 {
 public:
  static constexpr size_t kDigestBytes = 32;

  Sha256();

  /// Absorbs `data`; may be called any number of times.
  void Update(std::string_view data);

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// reused after Finish() without Reset().
  std::array<uint8_t, kDigestBytes> Finish();

  /// Returns Finish() formatted as 64 lowercase hex characters.
  std::string FinishHex();

  /// Restores the initial state so the object can hash a new message.
  void Reset();

 private:
  void Compress(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t length_bits_;
  uint8_t buffer_[64];
  size_t buffered_;
};

/// One-shot convenience: lowercase-hex SHA-256 of `data`.
std::string Sha256Hex(std::string_view data);

}  // namespace papyrus

#endif  // PAPYRUS_BASE_HASH_H_
