// Clang -Wthread-safety capability annotations.
//
// The macros expand to Clang thread-safety attributes when compiling with
// Clang and to nothing elsewhere (GCC builds see plain declarations).  The
// CI `thread-safety` job builds the library and tools with
// `-Werror=thread-safety -Werror=thread-safety-beta`, turning contract
// violations — mutating an OctDatabase off the engine thread, touching a
// PAPYRUS_GUARDED_BY field without its mutex — into compile errors.
//
// Vocabulary (see DESIGN.md "Threading contract"):
//   PAPYRUS_CAPABILITY(name)    class is a capability (a mutex, a role)
//   PAPYRUS_GUARDED_BY(mu)      field may only be touched holding `mu`
//   PAPYRUS_REQUIRES(cap)       caller must hold `cap` on entry
//   PAPYRUS_ACQUIRE / RELEASE   function takes / drops the capability
//   PAPYRUS_EXCLUDES(mu)        caller must NOT hold `mu` (self-deadlock)
//   PAPYRUS_ASSERT_CAPABILITY   runtime check that vouches for the
//                               capability to the static analysis
#ifndef PAPYRUS_BASE_THREAD_ANNOTATIONS_H_
#define PAPYRUS_BASE_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define PAPYRUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PAPYRUS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define PAPYRUS_CAPABILITY(x) PAPYRUS_THREAD_ANNOTATION(capability(x))

#define PAPYRUS_SCOPED_CAPABILITY PAPYRUS_THREAD_ANNOTATION(scoped_lockable)

#define PAPYRUS_GUARDED_BY(x) PAPYRUS_THREAD_ANNOTATION(guarded_by(x))

#define PAPYRUS_PT_GUARDED_BY(x) PAPYRUS_THREAD_ANNOTATION(pt_guarded_by(x))

#define PAPYRUS_REQUIRES(...) \
  PAPYRUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define PAPYRUS_REQUIRES_SHARED(...) \
  PAPYRUS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define PAPYRUS_ACQUIRE(...) \
  PAPYRUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define PAPYRUS_RELEASE(...) \
  PAPYRUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define PAPYRUS_TRY_ACQUIRE(...) \
  PAPYRUS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define PAPYRUS_EXCLUDES(...) PAPYRUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define PAPYRUS_ASSERT_CAPABILITY(x) \
  PAPYRUS_THREAD_ANNOTATION(assert_capability(x))

#define PAPYRUS_RETURN_CAPABILITY(x) PAPYRUS_THREAD_ANNOTATION(lock_returned(x))

#define PAPYRUS_NO_THREAD_SAFETY_ANALYSIS \
  PAPYRUS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace papyrus::base {

// The engine-thread *role capability* (in the style of Clang's role
// checking): a virtual capability that is never backed by a lock.  Code
// annotated PAPYRUS_REQUIRES(engine_thread) may only be reached from the
// engine thread — event-loop tops (TaskManager::Invoke, the daemon verb
// dispatcher, …) vouch for the role with AssertEngineThread(), which also
// performs the runtime check.
//
// Runtime model: every thread is an engine thread until it is marked as a
// pool worker (ScopedWorkerThread in StepExecutor::WorkerLoop).  Tests and
// tools drive sessions from their own main thread, which is therefore the
// engine thread for that session; the hazard the contract guards against
// is mutation from speculative pool workers.
class PAPYRUS_CAPABILITY("role") ThreadRole {
 public:
  constexpr ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;
};

// The global engine-thread role instance named by annotations, e.g.
//   void Commit() PAPYRUS_REQUIRES(base::engine_thread);
inline constinit ThreadRole engine_thread;

// True unless the calling thread has been marked as a pool worker.
bool OnEngineThread();

// Aborts (with `what` in the message) when called from a pool worker.
// Statically vouches for the engine_thread role for the rest of the
// calling function.
void AssertEngineThread(const char* what)
    PAPYRUS_ASSERT_CAPABILITY(engine_thread);

// Marks the current thread as a pool worker for its lifetime.  Instantiated
// at the top of StepExecutor::WorkerLoop; worker-side code that calls an
// engine-only API then dies loudly instead of corrupting shared state.
class ScopedWorkerThread {
 public:
  ScopedWorkerThread();
  ~ScopedWorkerThread();
  ScopedWorkerThread(const ScopedWorkerThread&) = delete;
  ScopedWorkerThread& operator=(const ScopedWorkerThread&) = delete;
};

}  // namespace papyrus::base

#endif  // PAPYRUS_BASE_THREAD_ANNOTATIONS_H_
