#include "base/intern.h"

#include <algorithm>
#include <cstring>

namespace papyrus::base {

char* Arena::Allocate(size_t n) {
  if (chunks_.empty() || used_in_last_ + n > last_capacity_) {
    size_t cap = std::max(chunk_bytes_, n);
    chunks_.push_back(std::make_unique<char[]>(cap));
    last_capacity_ = cap;
    used_in_last_ = 0;
  }
  char* p = chunks_.back().get() + used_in_last_;
  used_in_last_ += n;
  bytes_allocated_ += n;
  return p;
}

std::string_view Arena::CopyString(std::string_view s) {
  if (s.empty()) return {};
  char* p = Allocate(s.size());
  std::memcpy(p, s.data(), s.size());
  return std::string_view(p, s.size());
}

void Arena::Reset() {
  chunks_.clear();
  used_in_last_ = 0;
  last_capacity_ = 0;
  bytes_allocated_ = 0;
}

Symbol InternTable::Intern(std::string_view s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  std::string_view stored = arena_.CopyString(s);
  Symbol sym = static_cast<Symbol>(strings_.size());
  strings_.push_back(stored);
  index_.emplace(stored, sym);
  return sym;
}

Symbol InternTable::Find(std::string_view s) const {
  auto it = index_.find(s);
  return it == index_.end() ? kNoSymbol : it->second;
}

}  // namespace papyrus::base
