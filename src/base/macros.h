#ifndef PAPYRUS_BASE_MACROS_H_
#define PAPYRUS_BASE_MACROS_H_

#include <utility>

#include "base/result.h"
#include "base/status.h"

/// Propagates a non-OK `Status` to the caller.
#define PAPYRUS_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::papyrus::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (false)

#define PAPYRUS_MACROS_CONCAT_INNER_(x, y) x##y
#define PAPYRUS_MACROS_CONCAT_(x, y) PAPYRUS_MACROS_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a `Result<T>`); on error returns its status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define PAPYRUS_ASSIGN_OR_RETURN(lhs, rexpr)                             \
  PAPYRUS_ASSIGN_OR_RETURN_IMPL_(                                        \
      PAPYRUS_MACROS_CONCAT_(_papyrus_result_, __LINE__), lhs, rexpr)

#define PAPYRUS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#endif  // PAPYRUS_BASE_MACROS_H_
