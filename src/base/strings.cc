#include "base/strings.h"

#include <cctype>
#include <cstdlib>

namespace papyrus {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

std::string PercentEncode(std::string_view s) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || c == '%' || u == 0x7f) {
      out.push_back('%');
      out.push_back(kHex[u >> 4]);
      out.push_back(kHex[u & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

namespace {
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}
}  // namespace

std::string PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      int hi = HexValue(s[i + 1]);
      int lo = HexValue(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

Result<std::string> PercentDecodeStrict(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) {
      return Status::InvalidArgument("truncated percent escape in \"" +
                                     std::string(s) + "\"");
    }
    int hi = HexValue(s[i + 1]);
    int lo = HexValue(s[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("malformed percent escape \"" +
                                     std::string(s.substr(i, 3)) + "\"");
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace papyrus
