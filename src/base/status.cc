#include "base/status.h"

namespace papyrus {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace papyrus
