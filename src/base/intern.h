#ifndef PAPYRUS_BASE_INTERN_H_
#define PAPYRUS_BASE_INTERN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace papyrus::base {

/// A chunked bump allocator. Papyrus uses it on the commit path: interned
/// `cell:view:facet` name bytes and WAL encode scratch live here, so the
/// per-commit cost is a pointer bump instead of a malloc per string.
/// Memory is only released when the arena is destroyed or Reset.
class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `n` bytes (unaligned — callers store character data).
  char* Allocate(size_t n);

  /// Copies `s` into the arena and returns a stable view of the copy.
  std::string_view CopyString(std::string_view s);

  /// Total bytes handed out (diagnostics).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Drops every chunk. Invalidates all previously returned pointers.
  void Reset();

 private:
  size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t used_in_last_ = 0;    // bytes used in chunks_.back()
  size_t last_capacity_ = 0;   // capacity of chunks_.back()
  size_t bytes_allocated_ = 0;
};

/// A dense id for an interned string.
using Symbol = uint32_t;
inline constexpr Symbol kNoSymbol = 0xffffffffu;

/// Interns strings to dense 32-bit symbols with arena-backed storage.
///
/// The OCT database keys its shard maps by Symbol instead of std::string:
/// one copy of every `cell:view:facet` name lives in the arena, lookups
/// hash 4 bytes after the first intern, and records can reference names
/// without owning them. Symbols are assigned in intern order and are
/// stable for the table's lifetime; the table never forgets a string
/// (design-object names are never deleted — reclamation keeps tombstones).
///
/// Thread contract: intern/lookup follow the owner's threading rules (the
/// OctDatabase owns its table engine-side); there is no internal locking.
class InternTable {
 public:
  InternTable() = default;

  InternTable(const InternTable&) = delete;
  InternTable& operator=(const InternTable&) = delete;

  /// Returns the symbol for `s`, interning it on first sight.
  Symbol Intern(std::string_view s);

  /// Returns the symbol for `s` or kNoSymbol when it was never interned.
  Symbol Find(std::string_view s) const;

  /// The string of a symbol returned by Intern. The view is stable for
  /// the table's lifetime.
  std::string_view StringOf(Symbol sym) const { return strings_[sym]; }

  size_t size() const { return strings_.size(); }
  size_t arena_bytes() const { return arena_.bytes_allocated(); }

 private:
  struct ViewHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };
  struct ViewEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  Arena arena_;
  std::vector<std::string_view> strings_;  // symbol -> bytes
  std::unordered_map<std::string_view, Symbol, ViewHash, ViewEq> index_;
};

}  // namespace papyrus::base

#endif  // PAPYRUS_BASE_INTERN_H_
