#include "base/thread_annotations.h"

#include <cstdio>
#include <cstdlib>

namespace papyrus::base {
namespace {

// Worker mark for the calling thread.  Plain thread_local bool: only ever
// written by the owning thread (ScopedWorkerThread ctor/dtor), read by the
// assertion helpers.
thread_local bool t_is_worker_thread = false;

}  // namespace

bool OnEngineThread() { return !t_is_worker_thread; }

void AssertEngineThread(const char* what) {
  if (t_is_worker_thread) {
    std::fprintf(stderr,
                 "papyrus: engine-thread contract violated: %s called from a "
                 "worker-pool thread\n",
                 what == nullptr ? "(unknown)" : what);
    std::abort();
  }
}

ScopedWorkerThread::ScopedWorkerThread() { t_is_worker_thread = true; }

ScopedWorkerThread::~ScopedWorkerThread() { t_is_worker_thread = false; }

}  // namespace papyrus::base
