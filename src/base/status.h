#ifndef PAPYRUS_BASE_STATUS_H_
#define PAPYRUS_BASE_STATUS_H_

#include <string>
#include <utility>

namespace papyrus {

/// Canonical error codes used across all Papyrus subsystems.
///
/// Papyrus follows the Arrow/RocksDB convention of returning a `Status`
/// (or `Result<T>`, see result.h) from every fallible operation instead of
/// throwing exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kPermissionDenied,
  kAborted,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// A transient environmental failure (host down, injected fault): the
  /// operation may succeed if retried later. Never indicates a bug in the
  /// request itself.
  kUnavailable,
};

/// Returns a human readable name for `code` ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus a context message.
///
/// `Status` is cheap to copy for the OK case (no allocation) and carries a
/// message only on error. Typical use:
///
/// ```
/// Status DoThing() {
///   if (bad) return Status::InvalidArgument("bad thing");
///   return Status::OK();
/// }
/// ```
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace papyrus

#endif  // PAPYRUS_BASE_STATUS_H_
