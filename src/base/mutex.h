// Capability-annotated mutex wrappers.
//
// Clang's thread-safety analysis only understands locks whose type carries
// the `capability` attribute, so std::mutex fields cannot anchor
// PAPYRUS_GUARDED_BY annotations.  base::Mutex is a zero-overhead wrapper
// that is such an anchor; base::MutexLock is the RAII guard the analysis
// tracks.  MutexLock also models BasicLockable (lock()/unlock()) so it can
// be handed to std::condition_variable_any::wait — the wait-side unlock /
// relock happens inside the standard library, which the analysis does not
// look into, so annotated code sees the lock as continuously held across a
// wait, matching how callers reason about predicates.
#ifndef PAPYRUS_BASE_MUTEX_H_
#define PAPYRUS_BASE_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace papyrus::base {

class PAPYRUS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PAPYRUS_ACQUIRE() { mu_.lock(); }
  void unlock() PAPYRUS_RELEASE() { mu_.unlock(); }
  bool try_lock() PAPYRUS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock guard tracked by the analysis.  Ownership-tracking like
// std::unique_lock (manual unlock()/lock() pairs are allowed mid-scope;
// the destructor releases only if still held) and BasicLockable for use
// with base::CondVar (std::condition_variable_any).
class PAPYRUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PAPYRUS_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() PAPYRUS_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() PAPYRUS_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() PAPYRUS_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_;
};

// Condition variable usable with base::MutexLock.
using CondVar = std::condition_variable_any;

}  // namespace papyrus::base

#endif  // PAPYRUS_BASE_MUTEX_H_
