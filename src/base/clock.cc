#include "base/clock.h"

#include <chrono>

namespace papyrus {

int64_t SystemClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

SystemClock* SystemClock::Default() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

}  // namespace papyrus
