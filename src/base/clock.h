#ifndef PAPYRUS_BASE_CLOCK_H_
#define PAPYRUS_BASE_CLOCK_H_

#include <cstdint>

namespace papyrus {

/// Abstract time source.
///
/// Every Papyrus subsystem that timestamps history records, ages objects, or
/// schedules simulated work takes a `Clock*` so that tests and the Sprite
/// network simulator can drive virtual time deterministically.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  int64_t NowSeconds() const { return NowMicros() / 1000000; }
};

/// A manually advanced clock for tests and simulation.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override { return now_; }

  void AdvanceMicros(int64_t delta) { now_ += delta; }
  void AdvanceSeconds(int64_t delta) { now_ += delta * 1000000; }
  void SetMicros(int64_t t) { now_ = t; }

 private:
  int64_t now_;
};

/// Wall-clock time source backed by std::chrono::system_clock.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() const override;

  /// Process-wide instance (trivially destructible storage).
  static SystemClock* Default();
};

}  // namespace papyrus

#endif  // PAPYRUS_BASE_CLOCK_H_
