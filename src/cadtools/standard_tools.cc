#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "base/strings.h"
#include "cadtools/registry.h"
#include "cadtools/tool.h"

namespace papyrus::cadtools {

void ToolRegistry::Register(std::unique_ptr<Tool> tool) {
  std::string name = tool->name();
  tools_[name] = std::move(tool);
}

Result<const Tool*> ToolRegistry::Find(const std::string& name) const {
  auto it = tools_.find(name);
  if (it == tools_.end()) {
    return Status::NotFound("no such CAD tool: " + name);
  }
  return static_cast<const Tool*>(it->second.get());
}

std::vector<std::string> ToolRegistry::ToolNames() const {
  std::vector<std::string> names;
  names.reserve(tools_.size());
  for (const auto& [name, tool] : tools_) names.push_back(name);
  return names;
}

namespace {

using oct::BehavioralSpec;
using oct::DesignDomain;
using oct::DesignFormat;
using oct::DesignPayload;
using oct::Layout;
using oct::LogicNetwork;
using oct::TextData;

uint64_t Mix(uint64_t seed, std::string_view salt) {
  return seed * 1099511628211ull ^ Fnv1a(salt);
}

// Permanent exit statuses (see the convention in tool.h: 1..64 is the
// permanent band; 75 is reserved for transient failures, which none of
// the standard tools raise on their own — fault injection wraps them).
constexpr int kExitConstraint = 1;  // a design constraint was violated
constexpr int kExitBadInput = 2;    // wrong input object type or format

/// Fetches input `i` as a logic network, or null.
const LogicNetwork* AsLogic(const ToolRunContext& ctx, size_t i) {
  if (i >= ctx.inputs.size()) return nullptr;
  return std::get_if<LogicNetwork>(ctx.inputs[i]);
}

const Layout* AsLayout(const ToolRunContext& ctx, size_t i) {
  if (i >= ctx.inputs.size()) return nullptr;
  return std::get_if<Layout>(ctx.inputs[i]);
}

const BehavioralSpec* AsBehavioral(const ToolRunContext& ctx, size_t i) {
  if (i >= ctx.inputs.size()) return nullptr;
  return std::get_if<BehavioralSpec>(ctx.inputs[i]);
}

ToolRunResult WrongInput(const std::string& tool,
                         const std::string& expected) {
  return ToolRunResult::Fail(
      kExitBadInput, tool + ": input is not a " + expected + " object");
}

void Add(ToolRegistry* reg, ToolDescriptor desc, Tool::RunFn fn) {
  reg->Register(std::make_unique<Tool>(std::move(desc), std::move(fn)));
}

// --- synthesis front end ----------------------------------------------

/// edit: interactive behavioral/logic entry. Creates a behavioral spec
/// from options (-inputs N -outputs N -complexity N). Interactive, hence
/// non-migratable in task templates.
void RegisterEdit(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "edit";
  d.description = "interactive schematic / behavioral description editor";
  d.output_domain = DesignDomain::kBehavioral;
  d.base_cost_micros = 30000;
  d.interactive = true;
  d.man_page =
      "edit -inputs N -outputs N -complexity N\n"
      "Creates a behavioral description interactively.";
  d.min_inputs = 0;
  d.max_inputs = 0;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    ToolRunResult r;
    BehavioralSpec spec;
    spec.num_inputs =
        static_cast<int>(ctx.options.FlagInt("inputs", 8));
    spec.num_outputs =
        static_cast<int>(ctx.options.FlagInt("outputs", 8));
    spec.complexity =
        static_cast<int>(ctx.options.FlagInt("complexity", 16));
    spec.seed = Mix(ctx.seed, "edit");
    r.outputs.emplace_back(spec);
    return r;
  });
}

/// bdsyn: behavioral description -> multi-level logic network (blif).
void RegisterBdsyn(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "bdsyn";
  d.description = "translate a high-level description to a logic network";
  d.output_domain = DesignDomain::kLogic;
  d.base_cost_micros = 40000;
  d.cost_per_input_byte = 2.0;
  d.man_page = "bdsyn [-o out] in\nBDS behavioral-to-logic translator.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const BehavioralSpec* b = AsBehavioral(ctx, 0);
    if (b == nullptr) return WrongInput("bdsyn", "behavioral");
    LogicNetwork n;
    n.num_inputs = b->num_inputs;
    n.num_outputs = b->num_outputs;
    n.minterms = std::max(1, b->complexity * 8);
    n.literals = std::max(1, b->complexity * 12);
    n.levels = 6 + b->complexity % 8;
    n.format = DesignFormat::kBlif;
    n.seed = Mix(b->seed, "bdsyn");
    ToolRunResult r;
    r.outputs.emplace_back(n);
    return r;
  });
}

/// misII: multi-level logic optimization.
void RegisterMisII(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "misII";
  d.description = "multi-level logic synthesis and minimization";
  d.output_domain = DesignDomain::kLogic;
  d.base_cost_micros = 120000;
  d.cost_per_input_byte = 6.0;
  d.man_page =
      "misII [-f script] [-T target] [-o out] in\n"
      "Multi-level logic optimizer.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const LogicNetwork* n = AsLogic(ctx, 0);
    if (n == nullptr) return WrongInput("misII", "logic");
    LogicNetwork out = *n;
    // Optimization shrinks literal count and depth; the script option
    // changes how aggressively (deterministic, seed-driven jitter).
    double factor = ctx.options.HasFlag("f") ? 0.55 : 0.7;
    factor += (Mix(n->seed, "misII") % 10) * 0.01;
    out.literals = std::max(1, static_cast<int>(n->literals * factor));
    out.levels = std::max(2, n->levels - 2);
    out.seed = Mix(n->seed, "misII");
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// espresso: two-level minimization. Output format is selected by the -o
/// option: "equitott" -> algebraic equations, "pleasure" -> PLA. This is
/// the Figure 6.4 tool whose TSD the metadata engine showcases.
void RegisterEspresso(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "espresso";
  d.description = "two-level Boolean logic minimizer";
  d.output_domain = DesignDomain::kLogic;
  d.base_cost_micros = 80000;
  d.cost_per_input_byte = 4.0;
  d.man_page =
      "espresso [-o equitott|pleasure] in\nTwo-level minimizer; -o picks "
      "the output format (equations or PLA personality).";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const LogicNetwork* n = AsLogic(ctx, 0);
    if (n == nullptr) return WrongInput("espresso", "logic");
    LogicNetwork out = *n;
    double factor = 0.45 + (Mix(n->seed, "espresso") % 15) * 0.01;
    out.minterms = std::max(1, static_cast<int>(n->minterms * factor));
    std::string fmt = ctx.options.FlagValue("o", "pleasure");
    out.format = (fmt == "equitott") ? DesignFormat::kEquation
                                     : DesignFormat::kPla;
    out.seed = Mix(n->seed, "espresso");
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// pleasure: PLA folding — reduces the effective personality-matrix size.
void RegisterPleasure(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "pleasure";
  d.description = "PLA column/row folding";
  d.output_domain = DesignDomain::kLogic;
  d.base_cost_micros = 60000;
  d.cost_per_input_byte = 3.0;
  d.man_page = "pleasure in\nFolds a PLA personality matrix.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const LogicNetwork* n = AsLogic(ctx, 0);
    if (n == nullptr) return WrongInput("pleasure", "logic");
    if (n->format != DesignFormat::kPla) {
      return ToolRunResult::Fail(
          kExitBadInput, "pleasure: input is not in PLA format");
    }
    LogicNetwork out = *n;
    out.literals = std::max(1, static_cast<int>(n->literals * 0.8));
    out.seed = Mix(n->seed, "pleasure");
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// panda: PLA array layout generation. Fails when the -maxarea constraint
/// is violated — the Figure 3.7 abort scenario.
void RegisterPanda(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "panda";
  d.description = "PLA array layout generator";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 150000;
  d.cost_per_input_byte = 8.0;
  d.man_page =
      "panda [-maxarea A] in\nGenerates a PLA-style layout; fails when the "
      "estimated area exceeds -maxarea.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const LogicNetwork* n = AsLogic(ctx, 0);
    if (n == nullptr) return WrongInput("panda", "logic");
    if (n->format != DesignFormat::kPla) {
      return ToolRunResult::Fail(
          kExitBadInput, "panda: input is not in PLA format");
    }
    Layout lay;
    lay.style = "PLA";
    lay.num_cells = n->minterms;
    lay.area = static_cast<double>(n->minterms) *
               (n->num_inputs * 2 + n->num_outputs) * 12.0;
    lay.delay_ns = 4.0 + 0.05 * n->minterms;
    lay.power_mw = 0.4 * n->minterms;
    lay.wire_length = lay.area * 0.08;
    lay.routed = true;
    lay.format = DesignFormat::kSymbolic;
    lay.seed = Mix(n->seed, "panda");
    int64_t maxarea = ctx.options.FlagInt("maxarea", 0);
    if (maxarea > 0 && lay.area > static_cast<double>(maxarea)) {
      return ToolRunResult::Fail(
          kExitConstraint, "panda: area constraint violated (" +
                 std::to_string(static_cast<int64_t>(lay.area)) + " > " +
                 std::to_string(maxarea) + ")");
    }
    ToolRunResult r;
    r.outputs.emplace_back(lay);
    return r;
  });
}

/// wolfe: standard-cell place and route.
void RegisterWolfe(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "wolfe";
  d.description = "standard-cell placement and routing";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 400000;
  d.cost_per_input_byte = 20.0;
  d.man_page =
      "wolfe [-f] [-r rows] [-o out] in\nStandard-cell place and route.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const LogicNetwork* n = AsLogic(ctx, 0);
    if (n == nullptr) return WrongInput("wolfe", "logic");
    Layout lay;
    lay.style = "standard-cell";
    lay.num_cells = std::max(1, n->literals / 4);
    int64_t rows = ctx.options.FlagInt("r", 2);
    lay.area = lay.num_cells * 140.0 * (1.0 + 0.1 * rows);
    lay.delay_ns = 1.2 * n->levels + 0.01 * lay.num_cells;
    lay.power_mw = 0.15 * lay.num_cells;
    lay.wire_length = lay.area * 0.2;
    lay.routed = true;
    lay.format = DesignFormat::kSymbolic;
    lay.seed = Mix(n->seed, "wolfe");
    ToolRunResult r;
    r.outputs.emplace_back(lay);
    return r;
  });
}

/// padplace: places bonding pads around a layout.
void RegisterPadplace(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "padplace";
  d.description = "pad placement";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 50000;
  d.cost_per_input_byte = 1.0;
  d.man_page = "padplace [-c] [-f] [-S] [-o out] in\nPlaces I/O pads.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    // Pads can be attached to a physical layout or — as in the Figure 4.2
    // Structure_Synthesis flow, where Padp runs before place&route — to a
    // logic netlist (adding I/O pad cells to the network).
    if (const LogicNetwork* n = AsLogic(ctx, 0); n != nullptr) {
      LogicNetwork out = *n;
      out.literals = n->literals + n->num_inputs + n->num_outputs;
      out.seed = Mix(n->seed, "padplace");
      ToolRunResult r;
      r.outputs.emplace_back(out);
      return r;
    }
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("padplace", "layout or logic");
    if (l->has_pads) {
      return ToolRunResult::Fail(kExitConstraint,
                                 "padplace: layout already has pads");
    }
    Layout out = *l;
    out.has_pads = true;
    out.area = l->area * 1.15 + 5000.0;
    out.power_mw = l->power_mw + 2.0;
    out.seed = Mix(l->seed, "padplace");
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// musa: multi-level simulator. Consumes a design and a command file and
/// emits a simulation report (no design output).
void RegisterMusa(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "musa";
  d.description = "multi-level simulator";
  d.output_domain = DesignDomain::kOther;
  d.base_cost_micros = 200000;
  d.cost_per_input_byte = 10.0;
  d.man_page = "musa [-i commands] in\nMulti-level functional simulation.";
  d.min_inputs = 1;
  d.max_inputs = 2;
  d.num_outputs = 0;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const LogicNetwork* n = AsLogic(ctx, 0);
    if (n == nullptr) return WrongInput("musa", "logic");
    std::ostringstream report;
    report << "musa: simulated " << n->num_inputs << "-input/"
           << n->num_outputs << "-output network, "
           << (Mix(n->seed, "musa") % 1000 + 24) << " vectors, all pass";
    ToolRunResult r;
    r.message = report.str();
    return r;
  });
}

// --- Mosaico macro-cell flow (Figure 4.3) --------------------------------

/// atlas: channel definition for macro-cell layouts.
void RegisterAtlas(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "atlas";
  d.description = "channel definition";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 70000;
  d.cost_per_input_byte = 2.0;
  d.man_page = "atlas [-i] [-z] [-o out] in\nDefines routing channels.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("atlas", "layout");
    Layout out = *l;
    out.routed = false;
    out.seed = Mix(l->seed, "atlas");
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// mosaicoGR: global routing.
void RegisterMosaicoGR(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "mosaicoGR";
  d.description = "global routing";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 180000;
  d.cost_per_input_byte = 8.0;
  d.man_page = "mosaicoGR in [-r] [-ov out]\nGlobal router.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("mosaicoGR", "layout");
    Layout out = *l;
    // The routing-effort option (-e) changes the global route, hence the
    // wire length: retrying after a detailed-routing failure with new
    // parameters produces a genuinely different solution (§3.3.2).
    uint64_t h = Mix(l->seed, "mosaicoGR:" + ctx.options.FlagValue("e"));
    out.wire_length = l->area * (0.15 + (h % 11) * 0.01);
    out.seed = h;
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// puppy: macro-cell placement (between floor-planning and routing in the
/// Figure 3.4 scenario).
void RegisterPuppy(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "puppy";
  d.description = "macro-cell placement";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 220000;
  d.cost_per_input_byte = 10.0;
  d.man_page = "puppy [-o out] in\nPlaces macro cells.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("puppy", "layout");
    Layout out = *l;
    out.area = l->area * 0.95;
    out.seed = Mix(l->seed, "puppy");
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// PGcurrent: power/ground current calculation -> text report.
void RegisterPGcurrent(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "PGcurrent";
  d.description = "power and ground current calculation";
  d.output_domain = DesignDomain::kOther;
  d.base_cost_micros = 40000;
  d.cost_per_input_byte = 1.0;
  d.man_page = "PGcurrent in > report\nComputes P/G rail currents.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("PGcurrent", "layout");
    std::ostringstream report;
    report << "PGcurrent: Ivdd=" << l->power_mw / 5.0
           << "mA Ignd=" << l->power_mw / 5.0 << "mA";
    ToolRunResult r;
    r.outputs.emplace_back(TextData{report.str()});
    return r;
  });
}

/// mosaicoDR: detailed (channel) routing.
void RegisterMosaicoDR(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "mosaicoDR";
  d.description = "detailed channel routing";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 250000;
  d.cost_per_input_byte = 12.0;
  d.man_page = "mosaicoDR [-d] [-o out] [-r router] in\nChannel router.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("mosaicoDR", "layout");
    Layout out = *l;
    out.routed = true;
    out.wire_length = l->wire_length * 1.1;
    // -maxwire models the routing-area budget of Figure 3.4: detailed
    // routing fails when the global route left too much wire to realize.
    int64_t maxwire = ctx.options.FlagInt("maxwire", 0);
    if (maxwire > 0 && out.wire_length > static_cast<double>(maxwire)) {
      return ToolRunResult::Fail(
          kExitConstraint, "mosaicoDR: insufficient routing area (wire " +
                 std::to_string(static_cast<int64_t>(out.wire_length)) +
                 " > budget " + std::to_string(maxwire) + ")");
    }
    // The router choice (-r) changes the detailed routing solution, so it
    // participates in the output seed: retrying a failed downstream
    // compaction with a different router genuinely changes the outcome.
    out.seed = Mix(l->seed, "mosaicoDR:" + ctx.options.FlagValue("r"));
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// octflatten: symbolic flattening / format transformation. Takes one or
/// two layout inputs (-r reference) and produces one flattened layout.
void RegisterOctflatten(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "octflatten";
  d.description = "OCT symbolic flattening";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 30000;
  d.cost_per_input_byte = 1.5;
  d.man_page = "octflatten [-r ref] [-o out] in\nFlattens symbolic views.";
  d.min_inputs = 1;
  d.max_inputs = 2;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("octflatten", "layout");
    Layout out = *l;
    if (const Layout* ref = AsLayout(ctx, 1); ref != nullptr) {
      out.num_cells = l->num_cells + ref->num_cells;
      out.area = l->area + ref->area * 0.1;
    }
    out.format = DesignFormat::kSymbolic;
    out.seed = Mix(l->seed, "octflatten");
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// mizer: via minimization — shortens wiring.
void RegisterMizer(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "mizer";
  d.description = "via minimization";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 90000;
  d.cost_per_input_byte = 4.0;
  d.man_page = "mizer [-o out] in\nMinimizes via count.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("mizer", "layout");
    Layout out = *l;
    out.wire_length = l->wire_length * 0.85;
    out.seed = Mix(l->seed, "mizer");
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// sparcs: layout compaction. Horizontal-first compaction (the default)
/// fails deterministically for "hard" layouts (seed % 3 == 0); the -v
/// vertical-first variant fails for a different, rarer class
/// (seed % 7 == 0). This reproduces the Figure 4.3 conditional-flow and
/// programmable-abort scenario with deterministic failure injection.
void RegisterSparcs(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "sparcs";
  d.description = "layout compaction";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 300000;
  d.cost_per_input_byte = 15.0;
  d.man_page =
      "sparcs [-v] [-t] [-w layer]... [-o out] in\nCompacts a layout; -v "
      "compacts vertically first.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("sparcs", "layout");
    bool vertical_first = ctx.options.HasFlag("v");
    uint64_t h = Mix(l->seed, "sparcs-difficulty");
    if (!vertical_first && h % 3 == 0) {
      return ToolRunResult::Fail(
          kExitConstraint,
          "sparcs: horizontal-first compaction failed (overconstrained)");
    }
    if (vertical_first && h % 7 == 0) {
      return ToolRunResult::Fail(
          kExitConstraint,
          "sparcs: vertical-first compaction failed (overconstrained)");
    }
    Layout out = *l;
    out.compacted = true;
    out.area = l->area * (vertical_first ? 0.72 : 0.68);
    out.wire_length = l->wire_length * 0.9;
    out.seed = Mix(l->seed, vertical_first ? "sparcs-v" : "sparcs-h");
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// vulcan: creates the protection-frame abstraction view.
void RegisterVulcan(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "vulcan";
  d.description = "protection frame / abstraction view generation";
  d.output_domain = DesignDomain::kPhysical;
  d.base_cost_micros = 40000;
  d.cost_per_input_byte = 1.0;
  d.man_page = "vulcan in [-o out]\nCreates an abstraction view.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("vulcan", "layout");
    Layout out = *l;
    out.has_abstraction = true;
    out.seed = Mix(l->seed, "vulcan");
    ToolRunResult r;
    r.outputs.emplace_back(out);
    return r;
  });
}

/// mosaicoRC: routing completeness check. Fails on unrouted layouts.
void RegisterMosaicoRC(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "mosaicoRC";
  d.description = "routing completeness check";
  d.output_domain = DesignDomain::kOther;
  d.base_cost_micros = 60000;
  d.cost_per_input_byte = 2.0;
  d.man_page = "mosaicoRC [-m margin] [-c ref] out\nChecks routing.";
  d.min_inputs = 1;
  d.max_inputs = 2;
  d.num_outputs = 0;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, ctx.inputs.size() - 1);
    if (l == nullptr) return WrongInput("mosaicoRC", "layout");
    if (!l->routed) {
      return ToolRunResult::Fail(
          kExitConstraint, "mosaicoRC: layout is not fully routed");
    }
    ToolRunResult r;
    r.message = "mosaicoRC: routing complete";
    return r;
  });
}

/// chipstats: collects performance statistics into a text report. Also the
/// measurement tool the attribute system uses for layout area/power/delay.
void RegisterChipstats(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "chipstats";
  d.description = "chip statistics collection";
  d.output_domain = DesignDomain::kOther;
  d.base_cost_micros = 20000;
  d.cost_per_input_byte = 0.5;
  d.man_page = "chipstats in > report\nReports area/delay/power/cells.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("chipstats", "layout");
    std::ostringstream report;
    report << "area " << l->area << "\ndelay " << l->delay_ns << "\npower "
           << l->power_mw << "\ncells " << l->num_cells << "\nwire "
           << l->wire_length;
    ToolRunResult r;
    r.outputs.emplace_back(TextData{report.str()});
    return r;
  });
}

/// crystal: timing analysis -> text report with the critical path delay.
/// Registered as the compute tool for delay attributes.
void RegisterCrystal(ToolRegistry* reg) {
  ToolDescriptor d;
  d.name = "crystal";
  d.description = "timing analysis";
  d.output_domain = DesignDomain::kOther;
  d.base_cost_micros = 100000;
  d.cost_per_input_byte = 5.0;
  d.man_page = "crystal in\nStatic timing analyzer.";
  d.min_inputs = 1;
  d.max_inputs = 1;
  d.num_outputs = 1;
  Add(reg, d, [](const ToolRunContext& ctx) {
    const Layout* l = AsLayout(ctx, 0);
    if (l == nullptr) return WrongInput("crystal", "layout");
    std::ostringstream report;
    report << l->delay_ns;
    ToolRunResult r;
    r.outputs.emplace_back(TextData{report.str()});
    return r;
  });
}

}  // namespace

void RegisterStandardSuite(ToolRegistry* registry) {
  RegisterEdit(registry);
  RegisterBdsyn(registry);
  RegisterMisII(registry);
  RegisterEspresso(registry);
  RegisterPleasure(registry);
  RegisterPanda(registry);
  RegisterWolfe(registry);
  RegisterPadplace(registry);
  RegisterMusa(registry);
  RegisterAtlas(registry);
  RegisterPuppy(registry);
  RegisterMosaicoGR(registry);
  RegisterPGcurrent(registry);
  RegisterMosaicoDR(registry);
  RegisterOctflatten(registry);
  RegisterMizer(registry);
  RegisterSparcs(registry);
  RegisterVulcan(registry);
  RegisterMosaicoRC(registry);
  RegisterChipstats(registry);
  RegisterCrystal(registry);
}

std::unique_ptr<ToolRegistry> CreateStandardRegistry() {
  auto registry = std::make_unique<ToolRegistry>();
  RegisterStandardSuite(registry.get());
  return registry;
}

}  // namespace papyrus::cadtools
