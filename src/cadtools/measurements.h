#ifndef PAPYRUS_CADTOOLS_MEASUREMENTS_H_
#define PAPYRUS_CADTOOLS_MEASUREMENTS_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "oct/design_data.h"

namespace papyrus::cadtools {

/// Computes an intrinsic attribute of a design payload by running the
/// appropriate measurement over it (the stand-in for invoking measurement
/// tools like chipstats/crystal synchronously, §4.3.6).
///
/// Supported attributes by payload type:
///  - layout:     area, delay, power, cells, wire
///  - logic:      minterms, literals, levels, num_inputs, num_outputs,
///                format
///  - behavioral: complexity, num_inputs, num_outputs
///  - text:       length
Result<std::string> MeasureAttribute(const oct::DesignPayload& payload,
                                     const std::string& attribute);

/// The attribute names measurable on a payload of this kind (sorted).
std::vector<std::string> MeasurableAttributes(
    const oct::DesignPayload& payload);

/// The conventional measurement tool for an attribute ("chipstats" for
/// layout metrics, "crystal" for delay, ...), used to fill the
/// compute-tool field of attribute entries.
std::string MeasurementToolFor(const std::string& attribute);

}  // namespace papyrus::cadtools

#endif  // PAPYRUS_CADTOOLS_MEASUREMENTS_H_
