#ifndef PAPYRUS_CADTOOLS_TOOL_H_
#define PAPYRUS_CADTOOLS_TOOL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "oct/design_data.h"

namespace papyrus::cadtools {

/// Parsed tool command line: `-flag`, `-flag value`, and positionals.
///
/// Papyrus never interprets tool options itself (tool encapsulation,
/// §1.4) — this parser exists only inside the mock tool suite, which plays
/// the role of the real OCT executables.
struct ToolOptions {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  /// Parses argv-style words (without the tool name). A word starting with
  /// '-' is a flag; it consumes the following word as its value when that
  /// word does not itself start with '-'.
  static ToolOptions Parse(const std::vector<std::string>& args);

  bool HasFlag(const std::string& name) const {
    return flags.count(name) > 0;
  }
  std::string FlagValue(const std::string& name,
                        const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  int64_t FlagInt(const std::string& name, int64_t fallback) const;
};

/// Everything a mock tool sees when invoked: resolved input payloads (in
/// declared order), the parsed options, and a deterministic seed mixed from
/// the tool name, options and input seeds.
///
/// The context is an *immutable snapshot*: under the parallel step executor
/// the payloads are copies taken at dispatch time and the run may happen on
/// a worker thread, so a tool must derive everything — including randomness
/// — from the context alone (`seed`, `attempt`), never from shared state.
struct ToolRunContext {
  std::vector<const oct::DesignPayload*> inputs;
  std::vector<std::string> input_names;
  ToolOptions options;
  uint64_t seed = 0;
  /// 0 on the first dispatch of a step, incremented per environmental
  /// retry. Lets fault injection (and any retry-aware tool) draw fresh
  /// per-attempt randomness while staying a pure function of the context.
  int attempt = 0;
};

/// Exit status reserved for transient failures, mirroring sysexits.h
/// EX_TEMPFAIL ("temporary failure, user is invited to retry").
constexpr int kToolExitTransient = 75;

/// Outcome of a tool run.
///
/// Exit-status convention (shared by every mock tool and the task
/// manager):
///   - `0`      — success; declared outputs are present.
///   - `1..64`  — *permanent* tool failure: the invocation itself is wrong
///                for this input (constraint violated, wrong format,
///                usage error). Re-running the same invocation would fail
///                again. The task manager exposes the value as the Tcl
///                `$status` variable (§4.2.3) so the template can react.
///   - `75`     — *transient* environmental failure (EX_TEMPFAIL): license
///                server hiccup, NFS timeout, injected chaos. The task
///                manager retries the step with backoff and never shows
///                the failure to the template unless retries are
///                exhausted. Construct with `Transient()`, which also
///                sets the `transient` flag.
struct ToolRunResult {
  int exit_status = 0;
  std::string message;
  bool transient = false;  // retryable environmental failure
  std::vector<oct::DesignPayload> outputs;  // one per declared output

  /// A permanent failure: `status` must be in 1..64.
  static ToolRunResult Fail(int status, std::string msg) {
    ToolRunResult r;
    r.exit_status = status;
    r.message = std::move(msg);
    return r;
  }

  /// A transient (retryable) failure: exit status 75, `transient` set.
  static ToolRunResult Transient(std::string msg) {
    ToolRunResult r;
    r.exit_status = kToolExitTransient;
    r.message = std::move(msg);
    r.transient = true;
    return r;
  }
};

/// Static description of a CAD tool: identity, execution-cost model, and
/// the information Cadweld-style frame bodies carry (§2.2.3) that Papyrus
/// actually uses — interactivity (=> non-migratable) and a man page.
struct ToolDescriptor {
  std::string name;
  std::string description;
  /// Tool release identity: part of the derivation-cache key, so bumping
  /// it invalidates every memoized invocation of this tool (the recorded
  /// outputs may no longer match what the new release would produce).
  std::string version = "1";
  oct::DesignDomain output_domain = oct::DesignDomain::kOther;
  /// Simulated execution cost: base + per-input-byte component. The task
  /// manager turns this into Sprite process work.
  int64_t base_cost_micros = 1000;
  double cost_per_input_byte = 0.0;
  bool interactive = false;
  std::string man_page;
  /// Call-signature contract used by the static analyzer (papyrus-lint):
  /// bounds on the number of input objects a step invoking this tool may
  /// declare, and the exact number of outputs it produces. The permissive
  /// defaults (any inputs, unchecked outputs) exempt ad-hoc tools that
  /// don't declare a signature.
  int min_inputs = 0;
  int max_inputs = -1;   // -1 = unbounded
  int num_outputs = -1;  // -1 = unchecked
};

/// A CAD tool: descriptor plus a pure transformation function.
class Tool {
 public:
  using RunFn = std::function<ToolRunResult(const ToolRunContext&)>;

  Tool(ToolDescriptor descriptor, RunFn run)
      : descriptor_(std::move(descriptor)), run_(std::move(run)) {}

  const ToolDescriptor& descriptor() const { return descriptor_; }
  const std::string& name() const { return descriptor_.name; }

  ToolRunResult Run(const ToolRunContext& ctx) const { return run_(ctx); }

  /// Simulated CPU cost of running this tool over `total_input_bytes`.
  int64_t CostMicros(int64_t total_input_bytes) const;

 private:
  ToolDescriptor descriptor_;
  RunFn run_;
};

}  // namespace papyrus::cadtools

#endif  // PAPYRUS_CADTOOLS_TOOL_H_
