#ifndef PAPYRUS_CADTOOLS_REGISTRY_H_
#define PAPYRUS_CADTOOLS_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "cadtools/tool.h"

namespace papyrus::cadtools {

/// Maps tool names to implementations. The registry is the open end of
/// Papyrus' tool-encapsulation layer: adding or replacing a tool does not
/// affect task templates, which only mention tool names (§1.4).
class ToolRegistry {
 public:
  ToolRegistry() = default;
  ToolRegistry(const ToolRegistry&) = delete;
  ToolRegistry& operator=(const ToolRegistry&) = delete;

  /// Registers a tool, replacing any previous tool of the same name.
  void Register(std::unique_ptr<Tool> tool);

  Result<const Tool*> Find(const std::string& name) const;
  bool Has(const std::string& name) const { return tools_.count(name) > 0; }
  std::vector<std::string> ToolNames() const;
  size_t size() const { return tools_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Tool>> tools_;
};

/// Registers the full mock OCT tool suite used by the thesis' example
/// templates (bdsyn, misII, espresso, pleasure, panda, wolfe, padplace,
/// musa, atlas, mosaicoGR, PGcurrent, mosaicoDR, octflatten, mizer,
/// sparcs, vulcan, mosaicoRC, chipstats, edit, crystal).
void RegisterStandardSuite(ToolRegistry* registry);

/// Convenience: a registry preloaded with the standard suite.
std::unique_ptr<ToolRegistry> CreateStandardRegistry();

}  // namespace papyrus::cadtools

#endif  // PAPYRUS_CADTOOLS_REGISTRY_H_
