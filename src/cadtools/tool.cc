#include "cadtools/tool.h"

#include <cmath>

#include "base/strings.h"

namespace papyrus::cadtools {

ToolOptions ToolOptions::Parse(const std::vector<std::string>& args) {
  ToolOptions opts;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.size() > 1 && a[0] == '-') {
      std::string flag = a.substr(1);
      if (i + 1 < args.size() && !args[i + 1].empty() &&
          args[i + 1][0] != '-') {
        opts.flags[flag] = args[i + 1];
        ++i;
      } else {
        opts.flags[flag] = "";
      }
    } else {
      opts.positional.push_back(a);
    }
  }
  return opts;
}

int64_t ToolOptions::FlagInt(const std::string& name,
                             int64_t fallback) const {
  auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  int64_t v = 0;
  if (!ParseInt64(it->second, &v)) return fallback;
  return v;
}

int64_t Tool::CostMicros(int64_t total_input_bytes) const {
  double cost = static_cast<double>(descriptor_.base_cost_micros) +
                descriptor_.cost_per_input_byte *
                    static_cast<double>(total_input_bytes);
  return static_cast<int64_t>(std::llround(cost));
}

}  // namespace papyrus::cadtools
