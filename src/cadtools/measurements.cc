#include "cadtools/measurements.h"

#include <sstream>

namespace papyrus::cadtools {

namespace {

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

Result<std::string> MeasureAttribute(const oct::DesignPayload& payload,
                                     const std::string& attribute) {
  if (const auto* l = std::get_if<oct::Layout>(&payload)) {
    if (attribute == "area") return FormatDouble(l->area);
    if (attribute == "delay") return FormatDouble(l->delay_ns);
    if (attribute == "power") return FormatDouble(l->power_mw);
    if (attribute == "cells") return std::to_string(l->num_cells);
    if (attribute == "wire") return FormatDouble(l->wire_length);
  } else if (const auto* n = std::get_if<oct::LogicNetwork>(&payload)) {
    if (attribute == "minterms") return std::to_string(n->minterms);
    if (attribute == "literals") return std::to_string(n->literals);
    if (attribute == "levels") return std::to_string(n->levels);
    if (attribute == "num_inputs") return std::to_string(n->num_inputs);
    if (attribute == "num_outputs") return std::to_string(n->num_outputs);
    if (attribute == "format") {
      return std::string(oct::DesignFormatToString(n->format));
    }
  } else if (const auto* b = std::get_if<oct::BehavioralSpec>(&payload)) {
    if (attribute == "complexity") return std::to_string(b->complexity);
    if (attribute == "num_inputs") return std::to_string(b->num_inputs);
    if (attribute == "num_outputs") return std::to_string(b->num_outputs);
  } else if (const auto* t = std::get_if<oct::TextData>(&payload)) {
    if (attribute == "length") return std::to_string(t->text.size());
  }
  return Status::NotFound("attribute \"" + attribute +
                          "\" is not measurable on a " +
                          oct::PayloadTypeName(payload) + " object");
}

std::vector<std::string> MeasurableAttributes(
    const oct::DesignPayload& payload) {
  if (std::holds_alternative<oct::Layout>(payload)) {
    return {"area", "cells", "delay", "power", "wire"};
  }
  if (std::holds_alternative<oct::LogicNetwork>(payload)) {
    return {"format",     "levels",      "literals",
            "minterms",   "num_inputs",  "num_outputs"};
  }
  if (std::holds_alternative<oct::BehavioralSpec>(payload)) {
    return {"complexity", "num_inputs", "num_outputs"};
  }
  if (std::holds_alternative<oct::TextData>(payload)) {
    return {"length"};
  }
  return {};
}

std::string MeasurementToolFor(const std::string& attribute) {
  if (attribute == "delay") return "crystal";
  if (attribute == "area" || attribute == "power" || attribute == "cells" ||
      attribute == "wire") {
    return "chipstats";
  }
  return "espresso";  // logic metrics come from the minimizer's summary
}

}  // namespace papyrus::cadtools
