#include "sync/sds.h"

#include <cstdlib>

#include "base/thread_annotations.h"
#include "cadtools/measurements.h"

namespace papyrus::sync {

Status SdsManager::CreateSds(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("SDS name must not be empty");
  }
  if (spaces_.count(name) > 0) {
    return Status::AlreadyExists("SDS already exists: " + name);
  }
  spaces_[name] = SdsState{};
  return Status::OK();
}

Status SdsManager::RemoveSds(const std::string& name) {
  if (spaces_.erase(name) == 0) {
    return Status::NotFound("no such SDS: " + name);
  }
  return Status::OK();
}

std::vector<std::string> SdsManager::SdsNames() const {
  std::vector<std::string> names;
  names.reserve(spaces_.size());
  for (const auto& [name, state] : spaces_) names.push_back(name);
  return names;
}

Result<SdsManager::SdsState*> SdsManager::FindSds(const std::string& name) {
  auto it = spaces_.find(name);
  if (it == spaces_.end()) return Status::NotFound("no such SDS: " + name);
  return &it->second;
}

Result<const SdsManager::SdsState*> SdsManager::FindSds(
    const std::string& name) const {
  auto it = spaces_.find(name);
  if (it == spaces_.end()) return Status::NotFound("no such SDS: " + name);
  return &it->second;
}

Status SdsManager::Register(const std::string& sds, int thread_id) {
  auto state = FindSds(sds);
  if (!state.ok()) return state.status();
  (*state)->registered.insert(thread_id);
  return Status::OK();
}

Status SdsManager::Deregister(const std::string& sds, int thread_id) {
  auto state = FindSds(sds);
  if (!state.ok()) return state.status();
  if ((*state)->registered.erase(thread_id) == 0) {
    return Status::NotFound("thread " + std::to_string(thread_id) +
                            " is not registered with " + sds);
  }
  return Status::OK();
}

Result<std::set<int>> SdsManager::RegisteredThreads(
    const std::string& sds) const {
  auto state = FindSds(sds);
  if (!state.ok()) return state.status();
  return (*state)->registered;
}

Result<std::vector<oct::ObjectId>> SdsManager::Contents(
    const std::string& sds) const {
  auto state = FindSds(sds);
  if (!state.ok()) return state.status();
  return std::vector<oct::ObjectId>((*state)->objects.begin(),
                                    (*state)->objects.end());
}

bool SdsManager::PredicatesAllow(
    const std::vector<NotifyPredicate>& predicates,
    const oct::ObjectId& new_version, const oct::ObjectId& old_version) {
  for (const NotifyPredicate& pred : predicates) {
    auto new_rec = db_->Peek(new_version);
    if (!new_rec.ok()) return false;
    auto new_val =
        cadtools::MeasureAttribute((*new_rec)->payload, pred.attribute);
    if (!new_val.ok()) return false;
    double lhs = std::strtod(new_val->c_str(), nullptr);

    double rhs = pred.constant;
    if (pred.compare_to_old) {
      auto old_rec = db_->Peek(old_version);
      if (!old_rec.ok()) return false;
      auto old_val =
          cadtools::MeasureAttribute((*old_rec)->payload, pred.attribute);
      if (!old_val.ok()) return false;
      rhs = std::strtod(old_val->c_str(), nullptr);
    }
    bool pass = false;
    switch (pred.op) {
      case NotifyPredicate::Op::kLess:
        pass = lhs < rhs;
        break;
      case NotifyPredicate::Op::kLessEqual:
        pass = lhs <= rhs;
        break;
      case NotifyPredicate::Op::kGreater:
        pass = lhs > rhs;
        break;
      case NotifyPredicate::Op::kGreaterEqual:
        pass = lhs >= rhs;
        break;
      case NotifyPredicate::Op::kEqual:
        pass = lhs == rhs;
        break;
      case NotifyPredicate::Op::kNotEqual:
        pass = lhs != rhs;
        break;
    }
    if (!pass) return false;
  }
  return true;
}

void SdsManager::NotifySubscribers(const std::string& sds_name,
                                   SdsState* sds,
                                   const oct::ObjectId& new_version) {
  auto it = sds->subscriptions.find(new_version.name);
  if (it == sds->subscriptions.end()) return;
  for (const SdsState::Subscription& sub : it->second) {
    if (sub.old_version == new_version) continue;  // own contribution
    if (!PredicatesAllow(sub.predicates, new_version, sub.old_version)) {
      ++suppressed_notifications_;
      continue;
    }
    Notification note;
    note.thread_id = sub.thread_id;
    note.sds = sds_name;
    note.new_version = new_version;
    note.old_version = sub.old_version;
    note.micros = db_->clock()->NowMicros();
    pending_[sub.thread_id].push_back(note);
    ++total_notifications_;
  }
}

Status SdsManager::Move(const oct::ObjectId& id, const Space& source,
                        const Space& destination, bool notify,
                        std::vector<NotifyPredicate> predicates) {
  base::AssertEngineThread("SdsManager::Move");
  if (source.kind == Space::Kind::kThreadWorkspace &&
      destination.kind == Space::Kind::kThreadWorkspace) {
    // §3.3.4.2: no direct data sharing among threads.
    return Status::PermissionDenied(
        "threads may only share data through synchronization data spaces");
  }
  // The object must exist and be visible.
  auto rec = db_->Get(id);
  if (!rec.ok()) return rec.status();

  if (source.kind == Space::Kind::kThreadWorkspace &&
      destination.kind == Space::Kind::kSds) {
    // Contribution: thread -> SDS.
    auto sds = FindSds(destination.sds);
    if (!sds.ok()) return sds.status();
    if ((*sds)->registered.count(source.thread_id) == 0) {
      return Status::PermissionDenied(
          "thread " + std::to_string(source.thread_id) +
          " is not registered with SDS " + destination.sds);
    }
    if (!(*sds)->objects.insert(id).second) {
      return Status::AlreadyExists(id.ToString() + " is already in SDS " +
                                   destination.sds);
    }
    NotifySubscribers(destination.sds, *sds, id);
    return Status::OK();
  }

  if (source.kind == Space::Kind::kSds &&
      destination.kind == Space::Kind::kThreadWorkspace) {
    // Retrieval: SDS -> thread, optionally leaving a notification flag.
    auto sds = FindSds(source.sds);
    if (!sds.ok()) return sds.status();
    if ((*sds)->registered.count(destination.thread_id) == 0) {
      return Status::PermissionDenied(
          "thread " + std::to_string(destination.thread_id) +
          " is not registered with SDS " + source.sds);
    }
    if ((*sds)->objects.count(id) == 0) {
      return Status::NotFound(id.ToString() + " is not in SDS " +
                              source.sds);
    }
    if (notify) {
      (*sds)->subscriptions[id.name].push_back(SdsState::Subscription{
          destination.thread_id, id, std::move(predicates)});
    }
    return Status::OK();
  }

  // SDS -> SDS transfer.
  auto src = FindSds(source.sds);
  if (!src.ok()) return src.status();
  auto dst = FindSds(destination.sds);
  if (!dst.ok()) return dst.status();
  if ((*src)->objects.count(id) == 0) {
    return Status::NotFound(id.ToString() + " is not in SDS " + source.sds);
  }
  if (!(*dst)->objects.insert(id).second) {
    return Status::AlreadyExists(id.ToString() + " is already in SDS " +
                                 destination.sds);
  }
  NotifySubscribers(destination.sds, *dst, id);
  return Status::OK();
}

std::vector<Notification> SdsManager::TakeNotifications(int thread_id) {
  auto it = pending_.find(thread_id);
  if (it == pending_.end()) return {};
  std::vector<Notification> out = std::move(it->second);
  pending_.erase(it);
  return out;
}

size_t SdsManager::PendingNotifications(int thread_id) const {
  auto it = pending_.find(thread_id);
  return it == pending_.end() ? 0 : it->second.size();
}

Status SdsManager::ImportThread(int importer_thread, int exporter_thread) {
  if (importer_thread == exporter_thread) {
    return Status::InvalidArgument("a thread cannot import itself");
  }
  imports_[importer_thread].insert(exporter_thread);
  return Status::OK();
}

Status SdsManager::RevokeImport(int importer_thread, int exporter_thread) {
  auto it = imports_.find(importer_thread);
  if (it == imports_.end() || it->second.erase(exporter_thread) == 0) {
    return Status::NotFound("no such import relationship");
  }
  return Status::OK();
}

bool SdsManager::CanRead(int importer_thread, int exporter_thread) const {
  if (importer_thread == exporter_thread) return true;
  auto it = imports_.find(importer_thread);
  return it != imports_.end() && it->second.count(exporter_thread) > 0;
}

std::set<int> SdsManager::ImportsOf(int importer_thread) const {
  auto it = imports_.find(importer_thread);
  return it == imports_.end() ? std::set<int>{} : it->second;
}

}  // namespace papyrus::sync
