#ifndef PAPYRUS_SYNC_SDS_H_
#define PAPYRUS_SYNC_SDS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/result.h"
#include "base/status.h"
#include "oct/attribute_store.h"
#include "oct/database.h"
#include "oct/object_id.h"

namespace papyrus::sync {

/// A predicate attached to a notification flag (§3.3.4.2): it filters the
/// notifications raised when a new version of a moved object enters the
/// SDS. Predicates compare an attribute of the new version against the
/// same attribute of the previously retrieved version ("notify only when
/// the new one is faster") or against a constant.
struct NotifyPredicate {
  enum class Op { kLess, kLessEqual, kGreater, kGreaterEqual, kEqual,
                  kNotEqual };
  std::string attribute;  // measured on the payloads (e.g. "delay")
  Op op = Op::kLess;
  /// When true, the right-hand side is the old version's attribute value;
  /// otherwise `constant` is used.
  bool compare_to_old = true;
  double constant = 0.0;
};

/// A change notification delivered to a design thread (§3.3.4.2: the
/// destination of a notification message is a thread rather than a
/// designer, so the owner of several threads can identify the context).
struct Notification {
  int thread_id = 0;
  std::string sds;           // SDS the change happened in
  oct::ObjectId new_version;  // the version that triggered the message
  oct::ObjectId old_version;  // the version the thread had retrieved
  int64_t micros = 0;
};

/// The space argument of a MOVE operation.
struct Space {
  enum class Kind { kThreadWorkspace, kSds };
  Kind kind = Kind::kSds;
  int thread_id = 0;  // when kThreadWorkspace
  std::string sds;    // when kSds

  static Space Thread(int id) {
    Space s;
    s.kind = Kind::kThreadWorkspace;
    s.thread_id = id;
    return s;
  }
  static Space Sds(std::string name) {
    Space s;
    s.kind = Kind::kSds;
    s.sds = std::move(name);
    return s;
  }
};

/// Manages synchronization data spaces (§3.3.4.2): shared repositories
/// through which design threads cooperate. Registered threads MOVE object
/// versions into an SDS to publish them and out of it to consume them;
/// consuming with a notification flag leaves a subscription that fires
/// when newer versions of the object arrive, filtered by optional
/// predicates. Objects in an SDS are never updated — only new versions are
/// added — and there is no locking: conflicts surface as notifications
/// (optimistic concurrency, §3.1).
///
/// The manager also implements thread import (§3.3.4.2): a registered
/// read-only, continuously reflected view of another designer's thread.
class SdsManager {
 public:
  explicit SdsManager(oct::OctDatabase* db) : db_(db) {}

  SdsManager(const SdsManager&) = delete;
  SdsManager& operator=(const SdsManager&) = delete;

  // --- space management ---------------------------------------------------

  Status CreateSds(const std::string& name);
  Status RemoveSds(const std::string& name);
  bool HasSds(const std::string& name) const { return spaces_.count(name); }
  std::vector<std::string> SdsNames() const;

  /// Registers / deregisters a thread with an SDS. Only registered
  /// threads can contribute or retrieve objects. The registered set is
  /// dynamic (§3.3.4.2).
  Status Register(const std::string& sds, int thread_id);
  Status Deregister(const std::string& sds, int thread_id);
  Result<std::set<int>> RegisteredThreads(const std::string& sds) const;

  /// The object versions currently published in an SDS.
  Result<std::vector<oct::ObjectId>> Contents(const std::string& sds) const;

  // --- the MOVE operation (§3.3.4.2) ---------------------------------------
  //
  // MOVE Object-ID, Source-space, Destination-space, Notification-flag,
  //      Predicate-set

  /// Moves one object version between spaces. Enforced rules:
  ///  - at least one side must be an SDS (threads never share directly);
  ///  - the thread side must be registered with the SDS involved;
  ///  - SDS contents are append-only (a version already present is an
  ///    error).
  /// When the source is an SDS and the destination a thread workspace and
  /// `notify` is set, a notification flag (with `predicates`) is left
  /// behind: the thread is notified when a newer version of the object
  /// reaches the SDS.
  Status Move(const oct::ObjectId& id, const Space& source,
              const Space& destination, bool notify = false,
              std::vector<NotifyPredicate> predicates = {});

  /// Notifications queued for a thread; drains the queue.
  std::vector<Notification> TakeNotifications(int thread_id);
  /// Number of pending notifications for a thread.
  size_t PendingNotifications(int thread_id) const;
  int64_t total_notifications() const { return total_notifications_; }
  int64_t suppressed_notifications() const {
    return suppressed_notifications_;
  }

  // --- thread import (§3.3.4.2) --------------------------------------------

  /// Grants `importer` a read-only continuous reflection of `exporter`'s
  /// thread. Unidirectional.
  Status ImportThread(int importer_thread, int exporter_thread);
  Status RevokeImport(int importer_thread, int exporter_thread);
  /// True when `importer` may read `exporter`'s thread.
  bool CanRead(int importer_thread, int exporter_thread) const;
  /// Threads imported by `importer`.
  std::set<int> ImportsOf(int importer_thread) const;

 private:
  struct SdsState {
    std::set<int> registered;
    std::set<oct::ObjectId> objects;
    // (object name, thread) -> subscription with old version & predicates.
    struct Subscription {
      int thread_id;
      oct::ObjectId old_version;
      std::vector<NotifyPredicate> predicates;
    };
    std::map<std::string, std::vector<Subscription>> subscriptions;
  };

  Result<SdsState*> FindSds(const std::string& name);
  Result<const SdsState*> FindSds(const std::string& name) const;
  bool PredicatesAllow(const std::vector<NotifyPredicate>& predicates,
                       const oct::ObjectId& new_version,
                       const oct::ObjectId& old_version);
  /// Fires subscriptions on `name` in `sds` for a newly published version.
  void NotifySubscribers(const std::string& sds_name, SdsState* sds,
                         const oct::ObjectId& new_version);

  oct::OctDatabase* db_;
  std::map<std::string, SdsState> spaces_;
  std::map<int, std::vector<Notification>> pending_;
  std::map<int, std::set<int>> imports_;  // importer -> exporters
  int64_t total_notifications_ = 0;
  int64_t suppressed_notifications_ = 0;
};

}  // namespace papyrus::sync

#endif  // PAPYRUS_SYNC_SDS_H_
