#include <algorithm>
#include <string>
#include <vector>

#include "base/strings.h"
#include "tcl/interp.h"
#include "tcl/parser.h"

namespace papyrus::tcl {

namespace {

using Argv = std::vector<std::string>;

EvalResult WrongArgs(const std::string& usage) {
  return EvalResult::Error("wrong # args: should be \"" + usage + "\"");
}

EvalResult CmdSet(Interp& in, const Argv& argv) {
  if (argv.size() == 2) {
    auto v = in.GetVar(argv[1]);
    if (!v.ok()) {
      return EvalResult::Error("can't read \"" + argv[1] +
                               "\": no such variable");
    }
    return EvalResult::Ok(*v);
  }
  if (argv.size() == 3) {
    in.SetVar(argv[1], argv[2]);
    return EvalResult::Ok(argv[2]);
  }
  return WrongArgs("set varName ?newValue?");
}

EvalResult CmdUnset(Interp& in, const Argv& argv) {
  if (argv.size() < 2) return WrongArgs("unset varName ?varName ...?");
  for (size_t i = 1; i < argv.size(); ++i) {
    if (!in.UnsetVar(argv[i])) {
      return EvalResult::Error("can't unset \"" + argv[i] +
                               "\": no such variable");
    }
  }
  return EvalResult::Ok();
}

EvalResult CmdIncr(Interp& in, const Argv& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return WrongArgs("incr varName ?increment?");
  }
  int64_t delta = 1;
  if (argv.size() == 3 && !ParseInt64(argv[2], &delta)) {
    return EvalResult::Error("expected integer increment, got \"" +
                             argv[2] + "\"");
  }
  auto v = in.GetVar(argv[1]);
  if (!v.ok()) {
    return EvalResult::Error("can't read \"" + argv[1] +
                             "\": no such variable");
  }
  int64_t cur = 0;
  if (!ParseInt64(*v, &cur)) {
    return EvalResult::Error("expected integer in variable \"" + argv[1] +
                             "\", got \"" + *v + "\"");
  }
  std::string next = std::to_string(cur + delta);
  in.SetVar(argv[1], next);
  return EvalResult::Ok(next);
}

EvalResult CmdExpr(Interp& in, const Argv& argv) {
  if (argv.size() < 2) return WrongArgs("expr arg ?arg ...?");
  std::string text;
  for (size_t i = 1; i < argv.size(); ++i) {
    if (i > 1) text += ' ';
    text += argv[i];
  }
  return in.EvalExpr(text);
}

EvalResult CmdIf(Interp& in, const Argv& argv) {
  // if expr ?then? body ?elseif expr ?then? body ...? ?else? ?body?
  size_t i = 1;
  while (true) {
    if (i >= argv.size()) return WrongArgs("if expr ?then? body ...");
    bool cond = false;
    EvalResult r = in.EvalExprBool(argv[i], &cond);
    if (!r.ok()) return r;
    ++i;
    if (i < argv.size() && argv[i] == "then") ++i;
    if (i >= argv.size()) return WrongArgs("if expr ?then? body ...");
    if (cond) return in.EvalScript(argv[i]);
    ++i;
    if (i >= argv.size()) return EvalResult::Ok();
    if (argv[i] == "elseif") {
      ++i;
      continue;
    }
    if (argv[i] == "else") ++i;
    if (i >= argv.size()) return WrongArgs("if ... else body");
    return in.EvalScript(argv[i]);
  }
}

EvalResult CmdWhile(Interp& in, const Argv& argv) {
  if (argv.size() != 3) return WrongArgs("while test body");
  while (true) {
    bool cond = false;
    EvalResult r = in.EvalExprBool(argv[1], &cond);
    if (!r.ok()) return r;
    if (!cond) break;
    EvalResult body = in.EvalScript(argv[2]);
    if (body.code == EvalCode::kBreak) break;
    if (body.code == EvalCode::kContinue) continue;
    if (body.code != EvalCode::kOk) return body;
  }
  return EvalResult::Ok();
}

EvalResult CmdFor(Interp& in, const Argv& argv) {
  if (argv.size() != 5) return WrongArgs("for start test next body");
  EvalResult r = in.EvalScript(argv[1]);
  if (r.code != EvalCode::kOk) return r;
  while (true) {
    bool cond = false;
    r = in.EvalExprBool(argv[2], &cond);
    if (!r.ok()) return r;
    if (!cond) break;
    EvalResult body = in.EvalScript(argv[4]);
    if (body.code == EvalCode::kBreak) break;
    if (body.code == EvalCode::kError || body.code == EvalCode::kReturn) {
      return body;
    }
    r = in.EvalScript(argv[3]);
    if (r.code != EvalCode::kOk) return r;
  }
  return EvalResult::Ok();
}

EvalResult CmdForeach(Interp& in, const Argv& argv) {
  if (argv.size() != 4) return WrongArgs("foreach varName list body");
  auto items = ParseList(argv[2]);
  if (!items.ok()) return EvalResult::Error(items.status().message());
  for (const std::string& item : *items) {
    in.SetVar(argv[1], item);
    EvalResult body = in.EvalScript(argv[3]);
    if (body.code == EvalCode::kBreak) break;
    if (body.code == EvalCode::kContinue) continue;
    if (body.code != EvalCode::kOk) return body;
  }
  return EvalResult::Ok();
}

EvalResult CmdProc(Interp& in, const Argv& argv) {
  if (argv.size() != 4) return WrongArgs("proc name args body");
  Status st = in.DefineProc(argv[1], argv[2], argv[3]);
  if (!st.ok()) return EvalResult::Error(st.message());
  return EvalResult::Ok();
}

EvalResult CmdReturn(Interp&, const Argv& argv) {
  if (argv.size() > 2) return WrongArgs("return ?value?");
  return EvalResult{EvalCode::kReturn, argv.size() == 2 ? argv[1] : ""};
}

EvalResult CmdBreak(Interp&, const Argv& argv) {
  if (argv.size() != 1) return WrongArgs("break");
  return EvalResult{EvalCode::kBreak, ""};
}

EvalResult CmdContinue(Interp&, const Argv& argv) {
  if (argv.size() != 1) return WrongArgs("continue");
  return EvalResult{EvalCode::kContinue, ""};
}

EvalResult CmdPuts(Interp& in, const Argv& argv) {
  if (argv.size() != 2) return WrongArgs("puts string");
  in.Print(argv[1]);
  return EvalResult::Ok();
}

EvalResult CmdEval(Interp& in, const Argv& argv) {
  if (argv.size() < 2) return WrongArgs("eval arg ?arg ...?");
  std::string script;
  for (size_t i = 1; i < argv.size(); ++i) {
    if (i > 1) script += ' ';
    script += argv[i];
  }
  return in.EvalScript(script);
}

EvalResult CmdCatch(Interp& in, const Argv& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return WrongArgs("catch script ?resultVarName?");
  }
  EvalResult r = in.EvalScript(argv[1]);
  if (argv.size() == 3) in.SetVar(argv[2], r.value);
  return EvalResult::Ok(std::to_string(static_cast<int>(r.code)));
}

EvalResult CmdError(Interp&, const Argv& argv) {
  if (argv.size() != 2) return WrongArgs("error message");
  return EvalResult::Error(argv[1]);
}

EvalResult CmdGlobal(Interp& in, const Argv& argv) {
  if (argv.size() < 2) return WrongArgs("global varName ?varName ...?");
  for (size_t i = 1; i < argv.size(); ++i) in.LinkGlobal(argv[i]);
  return EvalResult::Ok();
}

EvalResult CmdAppend(Interp& in, const Argv& argv) {
  if (argv.size() < 2) return WrongArgs("append varName ?value ...?");
  std::string value;
  if (auto v = in.GetVar(argv[1]); v.ok()) value = *v;
  for (size_t i = 2; i < argv.size(); ++i) value += argv[i];
  in.SetVar(argv[1], value);
  return EvalResult::Ok(value);
}

// --- list commands ---------------------------------------------------

EvalResult CmdList(Interp&, const Argv& argv) {
  std::vector<std::string> elems(argv.begin() + 1, argv.end());
  return EvalResult::Ok(FormatList(elems));
}

EvalResult CmdLLength(Interp&, const Argv& argv) {
  if (argv.size() != 2) return WrongArgs("llength list");
  auto items = ParseList(argv[1]);
  if (!items.ok()) return EvalResult::Error(items.status().message());
  return EvalResult::Ok(std::to_string(items->size()));
}

EvalResult CmdLIndex(Interp&, const Argv& argv) {
  if (argv.size() != 3) return WrongArgs("lindex list index");
  auto items = ParseList(argv[1]);
  if (!items.ok()) return EvalResult::Error(items.status().message());
  int64_t idx = 0;
  if (argv[2] == "end") {
    idx = static_cast<int64_t>(items->size()) - 1;
  } else if (!ParseInt64(argv[2], &idx)) {
    return EvalResult::Error("expected integer index, got \"" + argv[2] +
                             "\"");
  }
  if (idx < 0 || idx >= static_cast<int64_t>(items->size())) {
    return EvalResult::Ok();  // out-of-range yields empty, as in Tcl
  }
  return EvalResult::Ok((*items)[idx]);
}

EvalResult CmdLAppend(Interp& in, const Argv& argv) {
  if (argv.size() < 2) return WrongArgs("lappend varName ?value ...?");
  std::string value;
  if (auto v = in.GetVar(argv[1]); v.ok()) value = *v;
  for (size_t i = 2; i < argv.size(); ++i) {
    if (!value.empty()) value += ' ';
    value += QuoteListElement(argv[i]);
  }
  in.SetVar(argv[1], value);
  return EvalResult::Ok(value);
}

EvalResult CmdLRange(Interp&, const Argv& argv) {
  if (argv.size() != 4) return WrongArgs("lrange list first last");
  auto items = ParseList(argv[1]);
  if (!items.ok()) return EvalResult::Error(items.status().message());
  int64_t n = static_cast<int64_t>(items->size());
  auto parse_index = [&](const std::string& s, int64_t* out) {
    if (s == "end") {
      *out = n - 1;
      return true;
    }
    return ParseInt64(s, out);
  };
  int64_t first = 0;
  int64_t last = 0;
  if (!parse_index(argv[2], &first) || !parse_index(argv[3], &last)) {
    return EvalResult::Error("bad index in lrange");
  }
  first = std::max<int64_t>(first, 0);
  last = std::min(last, n - 1);
  std::vector<std::string> out;
  for (int64_t i = first; i <= last; ++i) out.push_back((*items)[i]);
  return EvalResult::Ok(FormatList(out));
}

EvalResult CmdConcat(Interp&, const Argv& argv) {
  std::vector<std::string> pieces;
  for (size_t i = 1; i < argv.size(); ++i) {
    std::string_view t = Trim(argv[i]);
    if (!t.empty()) pieces.emplace_back(t);
  }
  return EvalResult::Ok(Join(pieces, " "));
}

EvalResult CmdLSearch(Interp&, const Argv& argv) {
  if (argv.size() != 3) return WrongArgs("lsearch list pattern");
  auto items = ParseList(argv[1]);
  if (!items.ok()) return EvalResult::Error(items.status().message());
  for (size_t i = 0; i < items->size(); ++i) {
    if ((*items)[i] == argv[2]) return EvalResult::Ok(std::to_string(i));
  }
  return EvalResult::Ok("-1");
}

EvalResult CmdJoin(Interp&, const Argv& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return WrongArgs("join list ?joinString?");
  }
  auto items = ParseList(argv[1]);
  if (!items.ok()) return EvalResult::Error(items.status().message());
  return EvalResult::Ok(Join(*items, argv.size() == 3 ? argv[2] : " "));
}

EvalResult CmdSplit(Interp&, const Argv& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return WrongArgs("split string ?splitChars?");
  }
  std::string seps = argv.size() == 3 ? argv[2] : " \t\n";
  std::vector<std::string> pieces;
  std::string cur;
  for (char c : argv[1]) {
    if (seps.find(c) != std::string::npos) {
      pieces.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  pieces.push_back(cur);
  return EvalResult::Ok(FormatList(pieces));
}

// --- string / info ----------------------------------------------------

EvalResult CmdString(Interp&, const Argv& argv) {
  if (argv.size() < 3) return WrongArgs("string option arg ?arg ...?");
  const std::string& opt = argv[1];
  if (opt == "length") {
    return EvalResult::Ok(std::to_string(argv[2].size()));
  }
  if (opt == "index") {
    if (argv.size() != 4) return WrongArgs("string index string index");
    int64_t idx = 0;
    if (!ParseInt64(argv[3], &idx)) {
      return EvalResult::Error("bad index \"" + argv[3] + "\"");
    }
    if (idx < 0 || idx >= static_cast<int64_t>(argv[2].size())) {
      return EvalResult::Ok();
    }
    return EvalResult::Ok(std::string(1, argv[2][idx]));
  }
  if (opt == "compare") {
    if (argv.size() != 4) return WrongArgs("string compare s1 s2");
    int c = argv[2].compare(argv[3]);
    return EvalResult::Ok(std::to_string(c < 0 ? -1 : (c > 0 ? 1 : 0)));
  }
  if (opt == "match") {
    if (argv.size() != 4) return WrongArgs("string match pattern string");
    // Glob match supporting '*' and '?'.
    const std::string& pat = argv[2];
    const std::string& str = argv[3];
    std::function<bool(size_t, size_t)> match = [&](size_t p, size_t s) {
      while (p < pat.size()) {
        if (pat[p] == '*') {
          for (size_t k = s; k <= str.size(); ++k) {
            if (match(p + 1, k)) return true;
          }
          return false;
        }
        if (s >= str.size()) return false;
        if (pat[p] != '?' && pat[p] != str[s]) return false;
        ++p;
        ++s;
      }
      return s == str.size();
    };
    return EvalResult::Ok(match(0, 0) ? "1" : "0");
  }
  if (opt == "tolower") {
    std::string out = argv[2];
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
      return std::tolower(c);
    });
    return EvalResult::Ok(out);
  }
  if (opt == "toupper") {
    std::string out = argv[2];
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
      return std::toupper(c);
    });
    return EvalResult::Ok(out);
  }
  if (opt == "trim") {
    return EvalResult::Ok(std::string(Trim(argv[2])));
  }
  return EvalResult::Error("bad string option \"" + opt + "\"");
}

EvalResult CmdInfo(Interp& in, const Argv& argv) {
  if (argv.size() < 2) return WrongArgs("info option ?arg?");
  const std::string& opt = argv[1];
  if (opt == "exists") {
    if (argv.size() != 3) return WrongArgs("info exists varName");
    return EvalResult::Ok(in.VarExists(argv[2]) ? "1" : "0");
  }
  if (opt == "commands") {
    return EvalResult::Ok(FormatList(in.CommandNames()));
  }
  if (opt == "level") {
    return EvalResult::Ok(std::to_string(in.ScopeDepth()));
  }
  return EvalResult::Error("bad info option \"" + opt + "\"");
}

}  // namespace

void RegisterBuiltins(Interp* interp) {
  interp->RegisterCommand("set", CmdSet);
  interp->RegisterCommand("unset", CmdUnset);
  interp->RegisterCommand("incr", CmdIncr);
  interp->RegisterCommand("expr", CmdExpr);
  interp->RegisterCommand("if", CmdIf);
  interp->RegisterCommand("while", CmdWhile);
  interp->RegisterCommand("for", CmdFor);
  interp->RegisterCommand("foreach", CmdForeach);
  interp->RegisterCommand("proc", CmdProc);
  interp->RegisterCommand("return", CmdReturn);
  interp->RegisterCommand("break", CmdBreak);
  interp->RegisterCommand("continue", CmdContinue);
  interp->RegisterCommand("puts", CmdPuts);
  interp->RegisterCommand("eval", CmdEval);
  interp->RegisterCommand("catch", CmdCatch);
  interp->RegisterCommand("error", CmdError);
  interp->RegisterCommand("global", CmdGlobal);
  interp->RegisterCommand("append", CmdAppend);
  interp->RegisterCommand("list", CmdList);
  interp->RegisterCommand("llength", CmdLLength);
  interp->RegisterCommand("lindex", CmdLIndex);
  interp->RegisterCommand("lappend", CmdLAppend);
  interp->RegisterCommand("lrange", CmdLRange);
  interp->RegisterCommand("concat", CmdConcat);
  interp->RegisterCommand("lsearch", CmdLSearch);
  interp->RegisterCommand("join", CmdJoin);
  interp->RegisterCommand("split", CmdSplit);
  interp->RegisterCommand("string", CmdString);
  interp->RegisterCommand("info", CmdInfo);
}

}  // namespace papyrus::tcl
