#include "tcl/interp.h"

#include <cctype>

namespace papyrus::tcl {

namespace {

bool IsVarNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Expands one backslash escape at s[i] (s[i] == '\\'); appends the
/// replacement to out and advances i past the escape.
void ExpandBackslash(std::string_view s, size_t* i, std::string* out) {
  size_t j = *i + 1;
  if (j >= s.size()) {
    out->push_back('\\');
    *i = j;
    return;
  }
  char c = s[j];
  switch (c) {
    case 'n':
      out->push_back('\n');
      break;
    case 't':
      out->push_back('\t');
      break;
    case 'r':
      out->push_back('\r');
      break;
    case '\n': {
      // Backslash-newline plus following whitespace becomes one space.
      out->push_back(' ');
      ++j;
      while (j < s.size() && (s[j] == ' ' || s[j] == '\t')) ++j;
      *i = j;
      return;
    }
    default:
      out->push_back(c);
      break;
  }
  *i = j + 1;
}

}  // namespace

Interp::Interp() {
  scopes_.emplace_back();  // global scope
  RegisterBuiltins(this);
}

void Interp::RegisterCommand(const std::string& name, CommandFn fn) {
  commands_[name] = std::move(fn);
}

bool Interp::UnregisterCommand(const std::string& name) {
  procs_.erase(name);
  return commands_.erase(name) > 0;
}

bool Interp::HasCommand(const std::string& name) const {
  return commands_.count(name) > 0;
}

std::vector<std::string> Interp::CommandNames() const {
  std::vector<std::string> names;
  names.reserve(commands_.size());
  for (const auto& [name, fn] : commands_) names.push_back(name);
  return names;
}

Result<std::string> Interp::Eval(std::string_view script) {
  EvalResult r = EvalScript(script);
  switch (r.code) {
    case EvalCode::kOk:
    case EvalCode::kReturn:
      return r.value;
    case EvalCode::kError:
      return Status::InvalidArgument(r.value);
    case EvalCode::kBreak:
      return Status::InvalidArgument("invoked \"break\" outside of a loop");
    case EvalCode::kContinue:
      return Status::InvalidArgument(
          "invoked \"continue\" outside of a loop");
  }
  return Status::Internal("unreachable");
}

EvalResult Interp::EvalScript(std::string_view script) {
  if (++eval_depth_ > recursion_limit_) {
    --eval_depth_;
    return EvalResult::Error("too many nested evaluations");
  }
  auto parsed = ParseScript(script);
  if (!parsed.ok()) {
    --eval_depth_;
    return EvalResult::Error(parsed.status().message());
  }
  EvalResult result = EvalResult::Ok();
  for (const RawCommand& cmd : *parsed) {
    std::vector<std::string> argv;
    argv.reserve(cmd.words.size());
    bool substitution_failed = false;
    for (const RawWord& word : cmd.words) {
      EvalResult sub = SubstituteWord(word);
      if (!sub.ok()) {
        result = sub;
        substitution_failed = true;
        break;
      }
      argv.push_back(std::move(sub.value));
    }
    if (substitution_failed) break;
    result = RunCommand(argv);
    if (result.code != EvalCode::kOk) break;
  }
  --eval_depth_;
  return result;
}

EvalResult Interp::EvalCommand(const RawCommand& command) {
  std::vector<std::string> argv;
  argv.reserve(command.words.size());
  for (const RawWord& word : command.words) {
    EvalResult sub = SubstituteWord(word);
    if (!sub.ok()) return sub;
    argv.push_back(std::move(sub.value));
  }
  return RunCommand(argv);
}

EvalResult Interp::RunCommand(const std::vector<std::string>& argv) {
  if (argv.empty()) return EvalResult::Ok();
  ++commands_executed_;
  auto it = commands_.find(argv[0]);
  if (it == commands_.end()) {
    return EvalResult::Error("invalid command name \"" + argv[0] + "\"");
  }
  return it->second(*this, argv);
}

EvalResult Interp::SubstituteWord(const RawWord& word) {
  if (word.kind == WordKind::kBraced) return EvalResult::Ok(word.text);
  return Substitute(word.text);
}

EvalResult Interp::Substitute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '\\') {
      ExpandBackslash(text, &i, &out);
      continue;
    }
    if (c == '$') {
      size_t j = i + 1;
      std::string name;
      if (j < text.size() && text[j] == '{') {
        size_t close = text.find('}', j + 1);
        if (close == std::string_view::npos) {
          return EvalResult::Error("missing close-brace for variable name");
        }
        name = std::string(text.substr(j + 1, close - j - 1));
        i = close + 1;
      } else {
        while (j < text.size() && IsVarNameChar(text[j])) ++j;
        name = std::string(text.substr(i + 1, j - i - 1));
        i = j;
      }
      if (name.empty()) {  // a lone '$' is an ordinary character
        out.push_back('$');
        continue;
      }
      auto value = GetVar(name);
      if (!value.ok()) {
        return EvalResult::Error("can't read \"" + name +
                                 "\": no such variable");
      }
      out += *value;
      continue;
    }
    if (c == '[') {
      // Command substitution: evaluate the balanced bracket contents.
      int depth = 0;
      size_t j = i;
      for (; j < text.size(); ++j) {
        if (text[j] == '\\' && j + 1 < text.size()) {
          ++j;
          continue;
        }
        if (text[j] == '[') ++depth;
        if (text[j] == ']' && --depth == 0) break;
      }
      if (j >= text.size()) {
        return EvalResult::Error("missing close-bracket");
      }
      EvalResult nested = EvalScript(text.substr(i + 1, j - i - 1));
      if (nested.code == EvalCode::kError) return nested;
      out += nested.value;
      i = j + 1;
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return EvalResult::Ok(std::move(out));
}

void Interp::SetVar(const std::string& name, const std::string& value) {
  Scope& scope = scopes_.back();
  if (scopes_.size() > 1 && scope.global_links.count(name) > 0) {
    scopes_.front().vars[name] = value;
    return;
  }
  scope.vars[name] = value;
}

Result<std::string> Interp::GetVar(const std::string& name) const {
  const Scope& scope = scopes_.back();
  if (scopes_.size() > 1 && scope.global_links.count(name) > 0) {
    auto it = scopes_.front().vars.find(name);
    if (it == scopes_.front().vars.end()) {
      return Status::NotFound("no such variable: " + name);
    }
    return it->second;
  }
  auto it = scope.vars.find(name);
  if (it == scope.vars.end()) {
    return Status::NotFound("no such variable: " + name);
  }
  return it->second;
}

bool Interp::VarExists(const std::string& name) const {
  return GetVar(name).ok();
}

bool Interp::UnsetVar(const std::string& name) {
  Scope& scope = scopes_.back();
  if (scopes_.size() > 1 && scope.global_links.count(name) > 0) {
    return scopes_.front().vars.erase(name) > 0;
  }
  return scope.vars.erase(name) > 0;
}

void Interp::LinkGlobal(const std::string& name) {
  scopes_.back().global_links.insert(name);
}

void Interp::PushScope() { scopes_.emplace_back(); }

void Interp::PopScope() { scopes_.pop_back(); }

Status Interp::DefineProc(const std::string& name,
                          const std::string& params,
                          const std::string& body) {
  auto param_list = ParseList(params);
  if (!param_list.ok()) return param_list.status();
  Proc proc;
  proc.body = body;
  bool seen_default = false;
  for (size_t i = 0; i < param_list->size(); ++i) {
    const std::string& p = (*param_list)[i];
    auto parts = ParseList(p);
    if (!parts.ok()) return parts.status();
    if (parts->size() == 1) {
      if ((*parts)[0] == "args" && i + 1 == param_list->size()) {
        proc.varargs = true;
        break;
      }
      if (seen_default) {
        return Status::InvalidArgument(
            "non-defaulted parameter after defaulted one in proc " + name);
      }
      proc.params.emplace_back((*parts)[0], "");
    } else if (parts->size() == 2) {
      if (!seen_default) {
        seen_default = true;
        proc.first_defaulted = proc.params.size();
        proc.has_default_from = true;
      }
      proc.params.emplace_back((*parts)[0], (*parts)[1]);
    } else {
      return Status::InvalidArgument("bad parameter spec \"" + p +
                                     "\" in proc " + name);
    }
  }
  if (!proc.has_default_from) proc.first_defaulted = proc.params.size();
  procs_[name] = proc;
  Proc* stored = &procs_[name];
  RegisterCommand(name,
                  [stored](Interp& in, const std::vector<std::string>& argv) {
                    return in.CallProc(*stored, argv);
                  });
  return Status::OK();
}

EvalResult Interp::CallProc(const Proc& proc,
                            const std::vector<std::string>& argv) {
  size_t given = argv.size() - 1;
  if (given < proc.first_defaulted ||
      (!proc.varargs && given > proc.params.size())) {
    return EvalResult::Error("wrong # args for \"" + argv[0] + "\"");
  }
  PushScope();
  for (size_t i = 0; i < proc.params.size(); ++i) {
    if (i < given) {
      SetVar(proc.params[i].first, argv[i + 1]);
    } else {
      SetVar(proc.params[i].first, proc.params[i].second);
    }
  }
  if (proc.varargs) {
    std::vector<std::string> rest;
    for (size_t i = proc.params.size(); i < given; ++i) {
      rest.push_back(argv[i + 1]);
    }
    SetVar("args", FormatList(rest));
  }
  EvalResult r = EvalScript(proc.body);
  PopScope();
  if (r.code == EvalCode::kReturn) return EvalResult::Ok(r.value);
  if (r.code == EvalCode::kBreak || r.code == EvalCode::kContinue) {
    return EvalResult::Error("invoked \"break\" or \"continue\" outside of "
                             "a loop in proc body");
  }
  return r;
}

void Interp::Print(const std::string& line) {
  output_ += line;
  output_ += '\n';
}

std::string Interp::TakeOutput() {
  std::string out = std::move(output_);
  output_.clear();
  return out;
}

}  // namespace papyrus::tcl
