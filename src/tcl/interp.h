#ifndef PAPYRUS_TCL_INTERP_H_
#define PAPYRUS_TCL_INTERP_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "tcl/parser.h"

namespace papyrus::tcl {

/// Tcl evaluation outcome codes. Besides success and error, Tcl scripts use
/// `return`, `break` and `continue` as non-local control flow that must
/// propagate through nested script evaluations.
enum class EvalCode {
  kOk,
  kError,
  kReturn,
  kBreak,
  kContinue,
};

/// Result of evaluating a Tcl word, command, script, or expression.
struct EvalResult {
  EvalCode code = EvalCode::kOk;
  std::string value;  // command result, or error message when kError

  static EvalResult Ok(std::string v = "") {
    return EvalResult{EvalCode::kOk, std::move(v)};
  }
  static EvalResult Error(std::string msg) {
    return EvalResult{EvalCode::kError, std::move(msg)};
  }
  bool ok() const { return code == EvalCode::kOk; }
};

class Interp;

/// A command implementation. `argv[0]` is the command name; the remaining
/// entries are fully substituted argument strings.
using CommandFn =
    std::function<EvalResult(Interp&, const std::vector<std::string>&)>;

/// An embeddable Tcl-core interpreter (§4.2.1).
///
/// Faithful to the thesis' description of Tcl: the only data type is the
/// string; a string is interpreted as a command, an expression, or a list
/// depending on context; applications extend the language by registering
/// new commands through `RegisterCommand` — exactly the dynamic-binding
/// capability TDL (src/tdl) relies on to add `task`, `step`, `subtask`,
/// `attribute` and `abort`.
class Interp {
 public:
  Interp();

  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  /// Registers (or replaces) a command.
  void RegisterCommand(const std::string& name, CommandFn fn);
  /// Removes a command; returns false when absent.
  bool UnregisterCommand(const std::string& name);
  bool HasCommand(const std::string& name) const;
  /// Sorted names of all registered commands (built-ins + procs + app).
  std::vector<std::string> CommandNames() const;

  /// Evaluates a script; the value of the last command is the result.
  /// `return` at top level yields its value; `break`/`continue` at top
  /// level are errors, as in Tcl.
  Result<std::string> Eval(std::string_view script);

  /// Script evaluation preserving control-flow codes; used by commands
  /// implementing loops/conditionals.
  EvalResult EvalScript(std::string_view script);

  /// Substitutes and dispatches one parsed command. Used by the TDL task
  /// manager, which interprets templates one top-level command at a time
  /// to track internal command IDs (§4.3.4).
  EvalResult EvalCommand(const RawCommand& command);

  /// Evaluates a Tcl expression (C-like syntax; integer arithmetic;
  /// string-aware comparisons). Performs its own round of $/[]
  /// substitution as Tcl's expression processor does.
  EvalResult EvalExpr(std::string_view expr);

  /// Convenience: evaluates `expr` and coerces the result to a truth value
  /// (non-zero integer, or the strings "true"/"yes"). Returns kError with a
  /// message for non-boolean results.
  EvalResult EvalExprBool(std::string_view expr, bool* out);

  /// Performs $-, []- and backslash-substitution on a raw word.
  EvalResult SubstituteWord(const RawWord& word);
  /// Substitution over a bare string (as if it were a kBare word).
  EvalResult Substitute(std::string_view text);

  // --- Variables -----------------------------------------------------

  /// Sets a variable in the current scope (or the global scope when linked
  /// via `global`).
  void SetVar(const std::string& name, const std::string& value);
  Result<std::string> GetVar(const std::string& name) const;
  bool VarExists(const std::string& name) const;
  bool UnsetVar(const std::string& name);
  /// Links `name` in the current scope to the global variable (the
  /// `global` command).
  void LinkGlobal(const std::string& name);

  /// Current proc-call nesting depth; 0 at global level.
  int ScopeDepth() const { return static_cast<int>(scopes_.size()) - 1; }

  // --- Procs (defined via the `proc` built-in) ------------------------

  struct Proc {
    std::vector<std::pair<std::string, std::string>> params;  // name,default
    bool has_default_from = false;  // index of first defaulted param valid
    size_t first_defaulted = 0;
    bool varargs = false;  // last param is `args`
    std::string body;
  };

  Status DefineProc(const std::string& name, const std::string& params,
                    const std::string& body);
  bool IsProc(const std::string& name) const {
    return procs_.count(name) > 0;
  }

  // --- Output (the `puts` built-in) ------------------------------------

  void Print(const std::string& line);
  /// Returns and clears everything printed so far.
  std::string TakeOutput();
  const std::string& output() const { return output_; }

  /// Total commands dispatched (for interpreter benchmarks).
  int64_t commands_executed() const { return commands_executed_; }

  /// Maximum nested evaluation depth before reporting infinite recursion.
  void set_recursion_limit(int limit) { recursion_limit_ = limit; }

 private:
  friend class ScopeGuard;

  EvalResult RunCommand(const std::vector<std::string>& argv);
  EvalResult CallProc(const Proc& proc,
                      const std::vector<std::string>& argv);
  void PushScope();
  void PopScope();

  struct Scope {
    std::map<std::string, std::string> vars;
    std::set<std::string> global_links;
  };

  std::map<std::string, CommandFn> commands_;
  std::map<std::string, Proc> procs_;
  std::vector<Scope> scopes_;
  std::string output_;
  int64_t commands_executed_ = 0;
  int eval_depth_ = 0;
  int recursion_limit_ = 1000;
};

/// Registers the standard built-in command set (set, expr, if, while, for,
/// foreach, proc, list ops, string ops, ...). Called by the constructor;
/// exposed for tests that want a bare interpreter plus selected built-ins.
void RegisterBuiltins(Interp* interp);

}  // namespace papyrus::tcl

#endif  // PAPYRUS_TCL_INTERP_H_
