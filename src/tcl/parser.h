#ifndef PAPYRUS_TCL_PARSER_H_
#define PAPYRUS_TCL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"

namespace papyrus::tcl {

/// Kinds of raw word tokens produced by the command parser. Substitution
/// (variables, nested commands, backslashes) happens later, at eval time,
/// and only for kBare and kQuoted words — brace-quoted words are literal,
/// exactly as in Ousterhout's Tcl.
enum class WordKind {
  kBare,    // subject to $-, [...]- and backslash-substitution
  kQuoted,  // "..." with substitution, grouping preserved
  kBraced,  // {...} fully literal
};

/// One unsubstituted word of a command.
struct RawWord {
  WordKind kind = WordKind::kBare;
  std::string text;  // contents without the outer quotes/braces
};

/// One parsed command: a non-empty sequence of raw words.
struct RawCommand {
  std::vector<RawWord> words;
  size_t script_offset = 0;  // offset of the command in the source script
};

/// Splits a Tcl script into commands (separated by newlines or semicolons
/// outside any quoting construct), each a list of raw words. Comment lines
/// (`#` where a command would start) are skipped.
Result<std::vector<RawCommand>> ParseScript(std::string_view script);

/// Parses a Tcl list value into its elements, honoring braces and quotes.
Result<std::vector<std::string>> ParseList(std::string_view list);

/// Formats elements as a Tcl list, brace-quoting elements that need it.
std::string FormatList(const std::vector<std::string>& elements);

/// Quotes a single element so it survives a round trip through ParseList.
std::string QuoteListElement(const std::string& element);

}  // namespace papyrus::tcl

#endif  // PAPYRUS_TCL_PARSER_H_
