#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "base/strings.h"
#include "tcl/interp.h"

namespace papyrus::tcl {

namespace {

/// An expression operand: an integer when the text parses as one, a string
/// otherwise. Arithmetic requires integers (the thesis: "A Tcl expression
/// has C-like syntax and evaluates to an integer result"); comparisons fall
/// back to string comparison for non-numeric operands.
struct Value {
  bool is_int = false;
  int64_t i = 0;
  std::string s;

  static Value Int(int64_t v) {
    Value out;
    out.is_int = true;
    out.i = v;
    out.s = std::to_string(v);
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    int64_t parsed = 0;
    if (ParseInt64(v, &parsed)) {
      out.is_int = true;
      out.i = parsed;
    }
    out.s = std::move(v);
    return out;
  }
};

enum class TokKind {
  kValue,
  kLParen,
  kRParen,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
  kNot,
  kQuestion,
  kColon,
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  Value value;
};

class ExprParser {
 public:
  ExprParser(Interp* interp, std::string_view text)
      : interp_(interp), text_(text) {}

  EvalResult Run() {
    EvalResult r = NextToken();
    if (!r.ok()) return r;
    Value v;
    r = ParseTernary(&v);
    if (!r.ok()) return r;
    if (cur_.kind != TokKind::kEnd) {
      return EvalResult::Error("syntax error in expression \"" +
                               std::string(text_) + "\"");
    }
    return EvalResult::Ok(v.is_int ? std::to_string(v.i) : v.s);
  }

 private:
  EvalResult NextToken() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      cur_ = Token{TokKind::kEnd, {}};
      return EvalResult::Ok();
    }
    char c = text_[pos_];
    auto one = [&](TokKind k) {
      ++pos_;
      cur_ = Token{k, {}};
      return EvalResult::Ok();
    };
    auto two = [&](TokKind k) {
      pos_ += 2;
      cur_ = Token{k, {}};
      return EvalResult::Ok();
    };
    char next = pos_ + 1 < text_.size() ? text_[pos_ + 1] : '\0';
    switch (c) {
      case '(':
        return one(TokKind::kLParen);
      case ')':
        return one(TokKind::kRParen);
      case '+':
        return one(TokKind::kPlus);
      case '-':
        return one(TokKind::kMinus);
      case '*':
        return one(TokKind::kStar);
      case '/':
        return one(TokKind::kSlash);
      case '%':
        return one(TokKind::kPercent);
      case '?':
        return one(TokKind::kQuestion);
      case ':':
        return one(TokKind::kColon);
      case '<':
        return next == '=' ? two(TokKind::kLe) : one(TokKind::kLt);
      case '>':
        return next == '=' ? two(TokKind::kGe) : one(TokKind::kGt);
      case '=':
        if (next == '=') return two(TokKind::kEq);
        return EvalResult::Error("single '=' in expression");
      case '!':
        return next == '=' ? two(TokKind::kNe) : one(TokKind::kNot);
      case '&':
        if (next == '&') return two(TokKind::kAnd);
        return EvalResult::Error("single '&' in expression");
      case '|':
        if (next == '|') return two(TokKind::kOr);
        return EvalResult::Error("single '|' in expression");
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = pos_;
      while (j < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[j]))) {
        ++j;
      }
      int64_t v = 0;
      (void)ParseInt64(text_.substr(pos_, j - pos_), &v);
      pos_ = j;
      cur_ = Token{TokKind::kValue, Value::Int(v)};
      return EvalResult::Ok();
    }
    if (c == '$') {
      size_t j = pos_ + 1;
      std::string name;
      if (j < text_.size() && text_[j] == '{') {
        size_t close = text_.find('}', j + 1);
        if (close == std::string_view::npos) {
          return EvalResult::Error("missing close-brace for variable name");
        }
        name = std::string(text_.substr(j + 1, close - j - 1));
        pos_ = close + 1;
      } else {
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_')) {
          ++j;
        }
        name = std::string(text_.substr(pos_ + 1, j - pos_ - 1));
        pos_ = j;
      }
      auto value = interp_->GetVar(name);
      if (!value.ok()) {
        return EvalResult::Error("can't read \"" + name +
                                 "\": no such variable");
      }
      cur_ = Token{TokKind::kValue, Value::Str(*value)};
      return EvalResult::Ok();
    }
    if (c == '[') {
      int depth = 0;
      size_t j = pos_;
      for (; j < text_.size(); ++j) {
        if (text_[j] == '[') ++depth;
        if (text_[j] == ']' && --depth == 0) break;
      }
      if (j >= text_.size()) {
        return EvalResult::Error("missing close-bracket in expression");
      }
      EvalResult nested =
          interp_->EvalScript(text_.substr(pos_ + 1, j - pos_ - 1));
      if (nested.code != EvalCode::kOk) return nested;
      pos_ = j + 1;
      cur_ = Token{TokKind::kValue, Value::Str(nested.value)};
      return EvalResult::Ok();
    }
    if (c == '"' || c == '{') {
      size_t j = pos_ + 1;
      int depth = 1;
      std::string content;
      bool closed = false;
      for (; j < text_.size(); ++j) {
        char cj = text_[j];
        if (c == '{') {
          if (cj == '{') ++depth;
          if (cj == '}' && --depth == 0) {
            closed = true;
            break;
          }
        } else if (cj == '"') {
          closed = true;
          break;
        }
        content.push_back(cj);
      }
      if (!closed) {
        return EvalResult::Error("unterminated string in expression");
      }
      pos_ = j + 1;
      if (c == '"') {
        EvalResult sub = interp_->Substitute(content);
        if (!sub.ok()) return sub;
        content = sub.value;
      }
      cur_ = Token{TokKind::kValue, Value::Str(content)};
      return EvalResult::Ok();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = pos_;
      while (j < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[j])) ||
              text_[j] == '_' || text_[j] == '.')) {
        ++j;
      }
      std::string word(text_.substr(pos_, j - pos_));
      pos_ = j;
      if (word == "and") {
        cur_ = Token{TokKind::kAnd, {}};
      } else if (word == "or") {
        cur_ = Token{TokKind::kOr, {}};
      } else if (word == "not") {
        cur_ = Token{TokKind::kNot, {}};
      } else if (word == "eq") {
        cur_ = Token{TokKind::kEq, {}};
      } else if (word == "ne") {
        cur_ = Token{TokKind::kNe, {}};
      } else if (word == "true" || word == "yes") {
        cur_ = Token{TokKind::kValue, Value::Int(1)};
      } else if (word == "false" || word == "no") {
        cur_ = Token{TokKind::kValue, Value::Int(0)};
      } else {
        // Bare words act as string literals (lenient, used for status
        // strings in task templates).
        cur_ = Token{TokKind::kValue, Value::Str(word)};
      }
      return EvalResult::Ok();
    }
    return EvalResult::Error(std::string("unexpected character '") + c +
                             "' in expression");
  }

  static bool Truthy(const Value& v) {
    if (v.is_int) return v.i != 0;
    return !v.s.empty() && v.s != "false" && v.s != "no";
  }

  EvalResult ParseTernary(Value* out) {
    EvalResult r = ParseOr(out);
    if (!r.ok()) return r;
    if (cur_.kind != TokKind::kQuestion) return EvalResult::Ok();
    bool cond = Truthy(*out);
    r = NextToken();
    if (!r.ok()) return r;
    Value then_v;
    r = ParseTernary(&then_v);
    if (!r.ok()) return r;
    if (cur_.kind != TokKind::kColon) {
      return EvalResult::Error("expected ':' in ?: expression");
    }
    r = NextToken();
    if (!r.ok()) return r;
    Value else_v;
    r = ParseTernary(&else_v);
    if (!r.ok()) return r;
    *out = cond ? then_v : else_v;
    return EvalResult::Ok();
  }

  EvalResult ParseOr(Value* out) {
    EvalResult r = ParseAnd(out);
    if (!r.ok()) return r;
    while (cur_.kind == TokKind::kOr) {
      r = NextToken();
      if (!r.ok()) return r;
      Value rhs;
      r = ParseAnd(&rhs);
      if (!r.ok()) return r;
      *out = Value::Int((Truthy(*out) || Truthy(rhs)) ? 1 : 0);
    }
    return EvalResult::Ok();
  }

  EvalResult ParseAnd(Value* out) {
    EvalResult r = ParseEquality(out);
    if (!r.ok()) return r;
    while (cur_.kind == TokKind::kAnd) {
      r = NextToken();
      if (!r.ok()) return r;
      Value rhs;
      r = ParseEquality(&rhs);
      if (!r.ok()) return r;
      *out = Value::Int((Truthy(*out) && Truthy(rhs)) ? 1 : 0);
    }
    return EvalResult::Ok();
  }

  EvalResult ParseEquality(Value* out) {
    EvalResult r = ParseRelational(out);
    if (!r.ok()) return r;
    while (cur_.kind == TokKind::kEq || cur_.kind == TokKind::kNe) {
      bool want_eq = cur_.kind == TokKind::kEq;
      r = NextToken();
      if (!r.ok()) return r;
      Value rhs;
      r = ParseRelational(&rhs);
      if (!r.ok()) return r;
      bool eq;
      if (out->is_int && rhs.is_int) {
        eq = out->i == rhs.i;
      } else {
        eq = out->s == rhs.s;
      }
      *out = Value::Int((eq == want_eq) ? 1 : 0);
    }
    return EvalResult::Ok();
  }

  EvalResult ParseRelational(Value* out) {
    EvalResult r = ParseAdditive(out);
    if (!r.ok()) return r;
    while (cur_.kind == TokKind::kLt || cur_.kind == TokKind::kLe ||
           cur_.kind == TokKind::kGt || cur_.kind == TokKind::kGe) {
      TokKind op = cur_.kind;
      r = NextToken();
      if (!r.ok()) return r;
      Value rhs;
      r = ParseAdditive(&rhs);
      if (!r.ok()) return r;
      int cmp;
      if (out->is_int && rhs.is_int) {
        cmp = out->i < rhs.i ? -1 : (out->i > rhs.i ? 1 : 0);
      } else {
        cmp = out->s.compare(rhs.s);
        cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      }
      bool v = false;
      switch (op) {
        case TokKind::kLt:
          v = cmp < 0;
          break;
        case TokKind::kLe:
          v = cmp <= 0;
          break;
        case TokKind::kGt:
          v = cmp > 0;
          break;
        case TokKind::kGe:
          v = cmp >= 0;
          break;
        default:
          break;
      }
      *out = Value::Int(v ? 1 : 0);
    }
    return EvalResult::Ok();
  }

  EvalResult ParseAdditive(Value* out) {
    EvalResult r = ParseMultiplicative(out);
    if (!r.ok()) return r;
    while (cur_.kind == TokKind::kPlus || cur_.kind == TokKind::kMinus) {
      bool plus = cur_.kind == TokKind::kPlus;
      r = NextToken();
      if (!r.ok()) return r;
      Value rhs;
      r = ParseMultiplicative(&rhs);
      if (!r.ok()) return r;
      if (!out->is_int || !rhs.is_int) {
        return EvalResult::Error("non-numeric operand to arithmetic");
      }
      *out = Value::Int(plus ? out->i + rhs.i : out->i - rhs.i);
    }
    return EvalResult::Ok();
  }

  EvalResult ParseMultiplicative(Value* out) {
    EvalResult r = ParseUnary(out);
    if (!r.ok()) return r;
    while (cur_.kind == TokKind::kStar || cur_.kind == TokKind::kSlash ||
           cur_.kind == TokKind::kPercent) {
      TokKind op = cur_.kind;
      r = NextToken();
      if (!r.ok()) return r;
      Value rhs;
      r = ParseUnary(&rhs);
      if (!r.ok()) return r;
      if (!out->is_int || !rhs.is_int) {
        return EvalResult::Error("non-numeric operand to arithmetic");
      }
      if ((op == TokKind::kSlash || op == TokKind::kPercent) &&
          rhs.i == 0) {
        return EvalResult::Error("divide by zero");
      }
      switch (op) {
        case TokKind::kStar:
          *out = Value::Int(out->i * rhs.i);
          break;
        case TokKind::kSlash:
          *out = Value::Int(out->i / rhs.i);
          break;
        case TokKind::kPercent:
          *out = Value::Int(out->i % rhs.i);
          break;
        default:
          break;
      }
    }
    return EvalResult::Ok();
  }

  EvalResult ParseUnary(Value* out) {
    if (cur_.kind == TokKind::kMinus) {
      EvalResult r = NextToken();
      if (!r.ok()) return r;
      r = ParseUnary(out);
      if (!r.ok()) return r;
      if (!out->is_int) {
        return EvalResult::Error("non-numeric operand to unary minus");
      }
      *out = Value::Int(-out->i);
      return EvalResult::Ok();
    }
    if (cur_.kind == TokKind::kNot) {
      EvalResult r = NextToken();
      if (!r.ok()) return r;
      r = ParseUnary(out);
      if (!r.ok()) return r;
      *out = Value::Int(Truthy(*out) ? 0 : 1);
      return EvalResult::Ok();
    }
    return ParsePrimary(out);
  }

  EvalResult ParsePrimary(Value* out) {
    if (cur_.kind == TokKind::kLParen) {
      EvalResult r = NextToken();
      if (!r.ok()) return r;
      r = ParseTernary(out);
      if (!r.ok()) return r;
      if (cur_.kind != TokKind::kRParen) {
        return EvalResult::Error("missing ')' in expression");
      }
      return NextToken();
    }
    if (cur_.kind == TokKind::kValue) {
      *out = cur_.value;
      return NextToken();
    }
    return EvalResult::Error("expected operand in expression \"" +
                             std::string(text_) + "\"");
  }

  Interp* interp_;
  std::string_view text_;
  size_t pos_ = 0;
  Token cur_;
};

}  // namespace

EvalResult Interp::EvalExpr(std::string_view expr) {
  ExprParser parser(this, expr);
  return parser.Run();
}

EvalResult Interp::EvalExprBool(std::string_view expr, bool* out) {
  EvalResult r = EvalExpr(expr);
  if (!r.ok()) return r;
  int64_t v = 0;
  if (ParseInt64(r.value, &v)) {
    *out = v != 0;
    return EvalResult::Ok();
  }
  if (r.value == "true" || r.value == "yes") {
    *out = true;
    return EvalResult::Ok();
  }
  if (r.value == "false" || r.value == "no" || r.value.empty()) {
    *out = false;
    return EvalResult::Ok();
  }
  return EvalResult::Error("expected boolean expression, got \"" + r.value +
                           "\"");
}

}  // namespace papyrus::tcl
