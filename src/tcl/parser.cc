#include "tcl/parser.h"

#include <cctype>

namespace papyrus::tcl {

namespace {

bool IsWordSpace(char c) { return c == ' ' || c == '\t' || c == '\r'; }
bool IsCommandSep(char c) { return c == '\n' || c == ';'; }

/// Scans a balanced `{...}` starting at `i` (s[i] == '{'); returns the index
/// one past the closing brace, or npos when unbalanced. Backslash escapes
/// protect braces.
size_t ScanBraced(std::string_view s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      ++i;
      continue;
    }
    if (c == '{') ++depth;
    if (c == '}') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

/// Scans a balanced `[...]` starting at `i` (s[i] == '['); returns the index
/// one past the closing bracket, or npos when unbalanced.
size_t ScanBracketed(std::string_view s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      ++i;
      continue;
    }
    if (c == '[') ++depth;
    if (c == ']') {
      if (--depth == 0) return i + 1;
    }
    if (c == '{') {
      size_t end = ScanBraced(s, i);
      if (end == std::string_view::npos) return std::string_view::npos;
      i = end - 1;
    }
  }
  return std::string_view::npos;
}

/// Scans a quoted `"..."` starting at `i` (s[i] == '"'); returns the index
/// one past the closing quote, or npos. Skips over embedded [...]
/// substitutions since they may contain quotes of their own.
size_t ScanQuoted(std::string_view s, size_t i) {
  ++i;  // skip opening quote
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c == '\\' && i + 1 < s.size()) {
      ++i;
      continue;
    }
    if (c == '[') {
      size_t end = ScanBracketed(s, i);
      if (end == std::string_view::npos) return std::string_view::npos;
      i = end - 1;
      continue;
    }
    if (c == '"') return i + 1;
  }
  return std::string_view::npos;
}

/// Parses one word starting at non-space s[i]; advances i past the word and
/// fills `out`. `in_list` disables bracket tracking (lists have no command
/// substitution).
Status ParseOneWord(std::string_view s, size_t* i, bool in_list,
                    RawWord* out) {
  size_t start = *i;
  char first = s[start];
  if (first == '{') {
    size_t end = ScanBraced(s, start);
    if (end == std::string_view::npos) {
      return Status::InvalidArgument("missing close-brace");
    }
    if (end < s.size() && !IsWordSpace(s[end]) && !IsCommandSep(s[end])) {
      return Status::InvalidArgument(
          "extra characters after close-brace");
    }
    out->kind = WordKind::kBraced;
    out->text = std::string(s.substr(start + 1, end - start - 2));
    *i = end;
    return Status::OK();
  }
  if (first == '"') {
    size_t end = ScanQuoted(s, start);
    if (end == std::string_view::npos) {
      return Status::InvalidArgument("missing close-quote");
    }
    if (end < s.size() && !IsWordSpace(s[end]) && !IsCommandSep(s[end])) {
      return Status::InvalidArgument(
          "extra characters after close-quote");
    }
    out->kind = WordKind::kQuoted;
    out->text = std::string(s.substr(start + 1, end - start - 2));
    *i = end;
    return Status::OK();
  }
  // Bare word: runs to unquoted whitespace or command separator.
  size_t j = start;
  while (j < s.size() && !IsWordSpace(s[j]) && !IsCommandSep(s[j])) {
    char c = s[j];
    if (c == '\\' && j + 1 < s.size()) {
      if (s[j + 1] == '\n') break;  // backslash-newline ends the word
      j += 2;
      continue;
    }
    if (c == '[' && !in_list) {
      size_t end = ScanBracketed(s, j);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("missing close-bracket");
      }
      j = end;
      continue;
    }
    ++j;
  }
  out->kind = WordKind::kBare;
  out->text = std::string(s.substr(start, j - start));
  *i = j;
  return Status::OK();
}

}  // namespace

Result<std::vector<RawCommand>> ParseScript(std::string_view script) {
  std::vector<RawCommand> commands;
  size_t i = 0;
  while (i < script.size()) {
    // Skip whitespace, separators, line continuations between commands.
    while (i < script.size()) {
      char c = script[i];
      if (IsWordSpace(c) || IsCommandSep(c)) {
        ++i;
      } else if (c == '\\' && i + 1 < script.size() &&
                 script[i + 1] == '\n') {
        i += 2;
      } else {
        break;
      }
    }
    if (i >= script.size()) break;
    if (script[i] == '#') {  // comment to end of line
      while (i < script.size() && script[i] != '\n') ++i;
      continue;
    }
    RawCommand cmd;
    cmd.script_offset = i;
    while (i < script.size() && !IsCommandSep(script[i])) {
      // Inter-word whitespace (incl. backslash-newline continuation).
      if (IsWordSpace(script[i])) {
        ++i;
        continue;
      }
      if (script[i] == '\\' && i + 1 < script.size() &&
          script[i + 1] == '\n') {
        i += 2;
        continue;
      }
      RawWord word;
      Status st = ParseOneWord(script, &i, /*in_list=*/false, &word);
      if (!st.ok()) {
        // `i` still points at the offending word; report its line so
        // template-load failures pinpoint the broken command.
        int line = 1;
        for (size_t k = 0; k < i; ++k) {
          if (script[k] == '\n') ++line;
        }
        return Status(st.code(),
                      "line " + std::to_string(line) + ": " + st.message());
      }
      cmd.words.push_back(std::move(word));
    }
    if (!cmd.words.empty()) commands.push_back(std::move(cmd));
  }
  return commands;
}

Result<std::vector<std::string>> ParseList(std::string_view list) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < list.size()) {
    char c = list[i];
    if (IsWordSpace(c) || c == '\n') {  // newlines separate list elements
      ++i;
      continue;
    }
    if (c == '\\' && i + 1 < list.size() && list[i + 1] == '\n') {
      i += 2;
      continue;
    }
    RawWord word;
    // Semicolons are ordinary characters inside lists; ParseOneWord treats
    // them as separators, so parse up to them manually for bare words.
    if (c == '{' || c == '"') {
      Status st = ParseOneWord(list, &i, /*in_list=*/true, &word);
      if (!st.ok()) return st;
      out.push_back(std::move(word.text));
      continue;
    }
    // Bare element: backslash sequences are decoded (as Tcl's list
    // parser does), so FormatList's escaping round-trips.
    std::string element;
    size_t j = i;
    while (j < list.size() && !IsWordSpace(list[j]) && list[j] != '\n') {
      if (list[j] == '\\' && j + 1 < list.size()) {
        element.push_back(list[j + 1]);
        j += 2;
        continue;
      }
      element.push_back(list[j]);
      ++j;
    }
    out.push_back(std::move(element));
    i = j;
  }
  return out;
}

std::string QuoteListElement(const std::string& element) {
  if (element.empty()) return "{}";
  bool needs_quote = false;
  bool has_backslash = false;
  int brace_depth = 0;
  bool braces_balanced = true;
  for (char c : element) {
    if (c == ' ' || c == '\t' || c == '\n' || c == ';' || c == '"' ||
        c == '$' || c == '[' || c == ']' || c == '\\' || c == '{' ||
        c == '}') {
      needs_quote = true;
    }
    if (c == '\\') has_backslash = true;
    if (c == '{') ++brace_depth;
    if (c == '}') {
      if (brace_depth == 0) braces_balanced = false;
      --brace_depth;
    }
  }
  if (brace_depth != 0) braces_balanced = false;
  if (!needs_quote) return element;
  // Backslashes inside braces would re-escape on parse; fall back to the
  // backslash form for those elements.
  if (braces_balanced && !has_backslash) return "{" + element + "}";
  // Fall back to backslash-escaping.
  std::string quoted;
  for (char c : element) {
    if (c == ' ' || c == '\t' || c == '\n' || c == ';' || c == '"' ||
        c == '$' || c == '[' || c == ']' || c == '\\' || c == '{' ||
        c == '}') {
      quoted.push_back('\\');
    }
    quoted.push_back(c);
  }
  return quoted;
}

std::string FormatList(const std::vector<std::string>& elements) {
  std::string out;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += QuoteListElement(elements[i]);
  }
  return out;
}

}  // namespace papyrus::tcl
