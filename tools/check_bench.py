#!/usr/bin/env python3
"""Gate checked-in Papyrus bench results against their embedded floors.

Every BENCH_*.json carries a top-level "floors" object declaring the
regression contract for its own numbers:

    "floors": {
      "scales/*/tasks_per_sec": {"min": 50},
      "multiprocess/byte_identical": {"eq": true},
      "scenarios/*/failed": {"max": 0}
    }

A floor key is a slash-separated path into the document. `*` fans out
over every element of an array (or every value of an object) at that
position. The constraint object supports:

    {"min": N}   value must be >= N
    {"max": N}   value must be <= N
    {"eq": V}    value must equal V (numbers, booleans, strings)

A bare number is shorthand for {"min": N}. Every floor must match at
least one value — a path that resolves to nothing is itself a failure
(the contract went stale), as is a file with no "floors" at all.

Usage: check_bench.py FILE [FILE...]
Exit status 0 = every floor of every file holds, 1 = any violation
(each is printed). Stdlib only; no third-party dependencies.
"""

import json
import numbers
import sys


class Checker:
    def __init__(self):
        self.errors = []
        self.checked = 0

    def error(self, msg):
        self.errors.append(msg)
        print(f"error: {msg}", file=sys.stderr)

    def ok(self):
        return not self.errors


def resolve(doc, parts):
    """Yields every value the path selects, depth-first."""
    if not parts:
        yield doc
        return
    head, rest = parts[0], parts[1:]
    if head == "*":
        if isinstance(doc, list):
            for item in doc:
                yield from resolve(item, rest)
        elif isinstance(doc, dict):
            for item in doc.values():
                yield from resolve(item, rest)
    elif isinstance(doc, dict) and head in doc:
        yield from resolve(doc[head], rest)
    elif isinstance(doc, list) and head.isdigit() and int(head) < len(doc):
        yield from resolve(doc[int(head)], rest)


def is_number(v):
    # bool is an int subclass; a floor of {"min": 1} on `true` would
    # silently pass, so booleans only ever satisfy {"eq": ...}.
    return isinstance(v, numbers.Real) and not isinstance(v, bool)


def check_floor(path, constraint, values, where, checker):
    if isinstance(constraint, numbers.Real) and not isinstance(
        constraint, bool
    ):
        constraint = {"min": constraint}
    if not isinstance(constraint, dict) or not constraint:
        checker.error(f"{where}: floor {path!r} is not a constraint object")
        return
    unknown = set(constraint) - {"min", "max", "eq"}
    if unknown:
        checker.error(
            f"{where}: floor {path!r} has unknown keys {sorted(unknown)}"
        )
        return
    for value in values:
        checker.checked += 1
        if "eq" in constraint and value != constraint["eq"]:
            checker.error(
                f"{where}: {path} = {value!r}, want == {constraint['eq']!r}"
            )
        if "min" in constraint:
            if not is_number(value):
                checker.error(
                    f"{where}: {path} = {value!r} is not numeric (min floor)"
                )
            elif value < constraint["min"]:
                checker.error(
                    f"{where}: {path} = {value} regressed below the "
                    f"floor {constraint['min']}"
                )
        if "max" in constraint:
            if not is_number(value):
                checker.error(
                    f"{where}: {path} = {value!r} is not numeric (max floor)"
                )
            elif value > constraint["max"]:
                checker.error(
                    f"{where}: {path} = {value} exceeds the "
                    f"ceiling {constraint['max']}"
                )


def check_file(path, checker):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        checker.error(f"{path}: cannot read: {e}")
        return
    floors = doc.get("floors")
    if floors is None:
        checker.error(f"{path}: no \"floors\" object — nothing gates "
                      "this bench against regression")
        return
    if not isinstance(floors, dict) or not floors:
        checker.error(f"{path}: \"floors\" must be a non-empty object")
        return
    for floor_path, constraint in floors.items():
        values = list(resolve(doc, floor_path.split("/")))
        if not values:
            checker.error(
                f"{path}: floor {floor_path!r} matches nothing — the "
                "contract is stale"
            )
            continue
        check_floor(floor_path, constraint, values, path, checker)


def main(argv):
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__, file=sys.stderr)
        return 2
    checker = Checker()
    for path in argv[1:]:
        check_file(path, checker)
    if checker.ok():
        print(
            f"check_bench: OK ({len(argv) - 1} file(s), "
            f"{checker.checked} floor value(s) checked)"
        )
        return 0
    print(f"check_bench: {len(checker.errors)} violation(s)",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
