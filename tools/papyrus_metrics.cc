// papyrus-metrics: command-line companion for the metrics registry.
//
//   papyrus-metrics --catalogue
//       Print the stable metric-name catalogue as a markdown table
//       (the source of docs/METRICS.md).
//
//   papyrus-metrics --names
//       Print just the metric names, one per line (for scripts).

#include <cstring>
#include <iostream>
#include <string>

#include "obs/metrics.h"

namespace {

void PrintCatalogue() {
  std::cout << "| Metric | Type | Description |\n";
  std::cout << "| --- | --- | --- |\n";
  for (const papyrus::obs::MetricInfo& info :
       papyrus::obs::MetricCatalogue()) {
    std::cout << "| `" << info.name << "` | "
              << papyrus::obs::MetricTypeName(info.type) << " | "
              << info.help << " |\n";
  }
}

void PrintNames() {
  for (const papyrus::obs::MetricInfo& info :
       papyrus::obs::MetricCatalogue()) {
    std::cout << info.name << "\n";
  }
}

void PrintUsage(std::ostream& os) {
  os << "usage: papyrus-metrics --catalogue | --names\n"
     << "  --catalogue  print the metric catalogue as a markdown table\n"
     << "  --names      print the metric names, one per line\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    PrintUsage(std::cerr);
    return 2;
  }
  if (std::strcmp(argv[1], "--catalogue") == 0) {
    PrintCatalogue();
    return 0;
  }
  if (std::strcmp(argv[1], "--names") == 0) {
    PrintNames();
    return 0;
  }
  if (std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    PrintUsage(std::cout);
    return 0;
  }
  std::cerr << "unknown option: " << argv[1] << "\n";
  PrintUsage(std::cerr);
  return 2;
}
