// papyrusd: the multi-session Papyrus daemon, spoken to over a
// line-based wire protocol on stdin/stdout and, with --socket, over a
// Unix-domain socket serving many clients concurrently.
//
//   papyrusd --root DIR [--jobs N] [--lease-micros N] [--max-attempts N]
//            [--trace FILE] [--metrics FILE] [--socket PATH] [--shared]
//            [--worker] [--fifo] [--inflight N] [--weight SESSION=N]
//            [--max-open-sessions N]
//
// Requests are single lines, `verb ~key=value ...` with percent-escaped
// values; every request gets exactly one `ok ...` or `err ...` response
// line. Verbs: ping, connect, attach, checkin, submit, run, drain,
// stat, task, sessions, checkpoint, shutdown.
//
//   echo 'ping' | papyrusd --root /tmp/pd
//
//   checkin ~session=alpha ~path=/proj/spec ~type=behav ~inputs=8
//       ~outputs=8 ~complexity=12 ~seed=7          (one line)
//   submit ~session=alpha ~thread=synth ~template=Structure_Synthesis
//       ~in=/proj/spec ~in=/proj/sim.cmd ~out=s.layout ~out=s.stats
//   drain
//
// Every task is journaled into the crash-surviving queue under
// --root/queue before it is acknowledged, and every session snapshot
// under --root/sessions/<name> is durable before the task completes:
// kill the process at any instant and the next papyrusd on the same
// root resumes with nothing lost and nothing executed twice.
//
// Scaling out:
//   --socket PATH   accept concurrent wire clients on a Unix-domain
//                   socket (stdin stays served); requests from all
//                   clients funnel into the one engine dispatch loop.
//   --worker        headless drain loop over a *shared* queue: several
//                   workers on one --root split the sessions between
//                   them (per-session file locks) and exit when the
//                   queue is empty.
//   --shared        open the queue in shared (multi-process) mode
//                   without the worker loop — e.g. the front-end that
//                   accepts submissions while workers drain.
//   --fifo          global FIFO claim order instead of the default
//                   weighted round-robin across sessions.
//   --inflight N    per-session in-flight claim cap under fairness.
//   --weight S=N    serve session S N tasks per rotation (repeatable).
//
// For seeded crash-injection soaks (the queue-chaos CI job) use
// --chaos-seed/--chaos-rate/--chaos-max: an injected crash terminates
// the process with exit code 42 so a supervisor loop can restart it.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "base/strings.h"
#include "server/daemon.h"
#include "server/transport.h"

namespace {

void PrintUsage(std::ostream& os) {
  os << "usage: papyrusd --root DIR [--jobs N] [--lease-micros N]\n"
     << "                [--max-attempts N] [--trace FILE]"
     << " [--metrics FILE]\n"
     << "                [--socket PATH] [--shared] [--worker] [--fifo]\n"
     << "                [--inflight N] [--weight SESSION=N]"
     << " [--max-open-sessions N]\n"
     << "                [--chaos-seed S --chaos-rate R --chaos-max M]\n"
     << "Reads wire-protocol lines from stdin (and --socket clients),\n"
     << "answers one line each. EOF or a `shutdown` request ends the\n"
     << "daemon gracefully; --worker drains the shared queue and"
     << " exits.\n";
}

int64_t ToInt(const char* s, int64_t fallback) {
  int64_t v = 0;
  return papyrus::ParseInt64(s, &v) ? v : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  papyrus::server::DaemonOptions options;
  uint64_t chaos_seed = 0;
  double chaos_rate = 0.0;
  int chaos_max = 0;
  std::string socket_path;
  bool worker = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--root") == 0) {
      options.root = next("--root");
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      options.session.worker_threads =
          static_cast<int>(ToInt(next("--jobs"), 1));
    } else if (std::strcmp(argv[i], "--lease-micros") == 0) {
      options.lease_micros =
          ToInt(next("--lease-micros"), options.lease_micros);
    } else if (std::strcmp(argv[i], "--max-attempts") == 0) {
      options.max_task_attempts = static_cast<int>(
          ToInt(next("--max-attempts"), options.max_task_attempts));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      options.trace_path = next("--trace");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      options.metrics_path = next("--metrics");
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      socket_path = next("--socket");
    } else if (std::strcmp(argv[i], "--shared") == 0) {
      options.shared_queue = true;
    } else if (std::strcmp(argv[i], "--worker") == 0) {
      worker = true;
      options.shared_queue = true;
    } else if (std::strcmp(argv[i], "--fifo") == 0) {
      options.fair_dispatch = false;
    } else if (std::strcmp(argv[i], "--inflight") == 0) {
      options.max_inflight_per_session =
          static_cast<int>(ToInt(next("--inflight"), 0));
    } else if (std::strcmp(argv[i], "--weight") == 0) {
      std::string spec = next("--weight");
      size_t eq = spec.rfind('=');
      int64_t weight = 0;
      if (eq == std::string::npos || eq == 0 ||
          !papyrus::ParseInt64(spec.substr(eq + 1), &weight) ||
          weight < 1) {
        std::fprintf(stderr, "--weight wants SESSION=N, got %s\n",
                     spec.c_str());
        return 2;
      }
      options.dispatch_weights[spec.substr(0, eq)] =
          static_cast<int>(weight);
    } else if (std::strcmp(argv[i], "--max-open-sessions") == 0) {
      options.max_open_sessions =
          static_cast<int>(ToInt(next("--max-open-sessions"), 0));
    } else if (std::strcmp(argv[i], "--chaos-seed") == 0) {
      chaos_seed = static_cast<uint64_t>(ToInt(next("--chaos-seed"), 0));
    } else if (std::strcmp(argv[i], "--chaos-rate") == 0) {
      chaos_rate = std::strtod(next("--chaos-rate"), nullptr);
    } else if (std::strcmp(argv[i], "--chaos-max") == 0) {
      chaos_max = static_cast<int>(ToInt(next("--chaos-max"), 0));
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      PrintUsage(std::cout);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      PrintUsage(std::cerr);
      return 2;
    }
  }
  if (options.root.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }
  papyrus::server::DaemonCrashPlan chaos(chaos_seed, chaos_rate,
                                         chaos_max);
  if (chaos_seed != 0) options.crash_plan = &chaos;

  auto daemon = papyrus::server::PapyrusDaemon::Start(options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "papyrusd: %s\n",
                 daemon.status().ToString().c_str());
    return 1;
  }

  // Startup pre-flight: statically re-check whatever the reopened queue
  // already holds and report findings before serving (report-only —
  // bad tasks still fail fast at execution with a journaled reason).
  for (const papyrus::lint::Diagnostic& d : (*daemon)->PreflightQueue()) {
    std::fprintf(stderr, "papyrusd: preflight: %s\n",
                 d.ToString().c_str());
  }

  if (worker) {
    papyrus::Status st = (*daemon)->WorkerDrain();
    if ((*daemon)->crashed()) {
      std::fprintf(stderr, "papyrusd: injected crash; exiting hot\n");
      return 42;
    }
    if (!st.ok()) {
      std::fprintf(stderr, "papyrusd: worker: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    st = (*daemon)->Shutdown();
    if (!st.ok()) {
      std::fprintf(stderr, "papyrusd: shutdown: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    return 0;
  }

  if (!socket_path.empty()) {
    // A client that disconnects mid-write must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);
    papyrus::server::TransportOptions transport_options;
    transport_options.socket_path = socket_path;
    transport_options.serve_stdin = true;
    transport_options.metrics = (*daemon)->metrics_registry();
    auto transport =
        papyrus::server::SocketTransport::Listen(transport_options);
    if (!transport.ok()) {
      std::fprintf(stderr, "papyrusd: %s\n",
                   transport.status().ToString().c_str());
      return 1;
    }
    papyrus::Status st = (*transport)->Run(
        [&](const std::string& line, papyrus::server::ClientContext* ctx) {
          return (*daemon)->HandleLine(std::string(papyrus::Trim(line)),
                                       ctx);
        },
        [&] { return (*daemon)->shut_down() || (*daemon)->crashed(); });
    if ((*daemon)->crashed()) {
      std::fprintf(stderr, "papyrusd: injected crash; exiting hot\n");
      return 42;
    }
    if (!st.ok()) {
      std::fprintf(stderr, "papyrusd: transport: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    if (!(*daemon)->shut_down()) {
      st = (*daemon)->Shutdown();
      if (!st.ok()) {
        std::fprintf(stderr, "papyrusd: shutdown: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    }
    return 0;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    std::string trimmed(papyrus::Trim(line));
    // Blank lines and # comments let .wire scripts carry commentary.
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::cout << (*daemon)->HandleLine(trimmed) << "\n" << std::flush;
    if ((*daemon)->crashed()) {
      // The crash plan fired: die hot, like the kill -9 it stands in
      // for. The journaled queue makes the next incarnation whole.
      std::fprintf(stderr, "papyrusd: injected crash; exiting hot\n");
      return 42;
    }
    if (trimmed == "shutdown") return 0;
  }
  papyrus::Status st = (*daemon)->Shutdown();
  if (!st.ok()) {
    std::fprintf(stderr, "papyrusd: shutdown: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  return 0;
}
