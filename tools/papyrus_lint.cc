// papyrus-lint: static flow verification for TDL task templates.
//
// Usage: papyrus-lint [--json] <template.tdl | directory>...
//
// Every *.tdl argument (and every *.tdl file inside directory arguments)
// is first registered into one template library, so cross-template
// subtask invocations resolve exactly as they would inside the task
// manager; each template is then linted against the standard CAD tool
// registry. Exit status: 0 clean (warnings allowed), 1 when any
// error-severity finding exists, 2 on usage errors.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "cadtools/registry.h"
#include "lint/linter.h"
#include "tdl/template.h"

namespace {

namespace fs = std::filesystem;

int Usage() {
  std::cerr << "usage: papyrus-lint [--json] <template.tdl | directory>...\n";
  return 2;
}

/// Expands file and directory arguments into a sorted list of .tdl paths.
bool CollectPaths(const std::vector<std::string>& args,
                  std::vector<std::string>* paths) {
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : fs::directory_iterator(arg, ec)) {
        if (entry.path().extension() == ".tdl") {
          found.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::cerr << "papyrus-lint: cannot read directory " << arg << "\n";
        return false;
      }
      std::sort(found.begin(), found.end());
      paths->insert(paths->end(), found.begin(), found.end());
    } else {
      paths->push_back(arg);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "papyrus-lint: unknown option " << arg << "\n";
      return Usage();
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (args.empty()) return Usage();

  std::vector<std::string> paths;
  if (!CollectPaths(args, &paths)) return 2;
  if (paths.empty()) {
    std::cerr << "papyrus-lint: no .tdl files found\n";
    return 2;
  }

  // Register everything first so cross-template subtasks resolve; parse
  // failures surface as diagnostics during the lint pass below.
  papyrus::tdl::TemplateLibrary library;
  for (const std::string& path : paths) {
    (void)library.AddFromFile(path);
  }
  auto tools = papyrus::cadtools::CreateStandardRegistry();

  papyrus::lint::LintOptions options;
  options.tools = tools.get();
  options.library = &library;

  std::vector<papyrus::lint::Diagnostic> all;
  int errors = 0;
  int warnings = 0;
  for (const std::string& path : paths) {
    papyrus::lint::LintResult result =
        papyrus::lint::LintFile(path, options);
    errors += result.errors;
    warnings += result.warnings;
    for (papyrus::lint::Diagnostic& d : result.diagnostics) {
      if (!json) std::cout << d.ToString() << "\n";
      all.push_back(std::move(d));
    }
  }

  if (json) {
    std::cout << papyrus::lint::DiagnosticsToJson(all) << "\n";
  } else {
    std::cout << paths.size() << " template(s): " << errors
              << " error(s), " << warnings << " warning(s)\n";
  }
  return errors > 0 ? 1 : 0;
}
