// papyrus-lint: static verification for TDL task templates and papyrusd
// wire scripts.
//
// Usage: papyrus-lint [--json] <template.tdl | directory>...
//        papyrus-lint --wire [--json] <script.wire | *.tdl | directory>...
//        papyrus-lint --catalogue
//
// Template mode: every *.tdl argument (and every *.tdl file inside
// directory arguments) is first registered into one template library, so
// cross-template subtask invocations resolve exactly as they would
// inside the task manager; each template is then linted against the
// standard CAD tool registry.
//
// Wire mode (--wire): every *.wire argument is analyzed as a papyrusd
// protocol script — daemon protocol checks plus the cross-task data flow
// of everything the script queues. The thesis template library is
// pre-registered (the daemon's sessions hold the same one); extra *.tdl
// files or directories on the command line extend it.
//
// --catalogue prints the full rule catalogue as a markdown table (the
// source of docs/LINT.md); --names prints just the rule ids.
//
// Exit status: 0 clean (warnings allowed), 1 when any error-severity
// finding exists, 2 on usage errors.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "cadtools/registry.h"
#include "lint/linter.h"
#include "lint/wire_analyzer.h"
#include "tdl/template.h"

namespace {

namespace fs = std::filesystem;

int Usage() {
  std::cerr
      << "usage: papyrus-lint [--json] <template.tdl | directory>...\n"
      << "       papyrus-lint --wire [--json]"
      << " <script.wire | *.tdl | directory>...\n"
      << "       papyrus-lint --catalogue | --names\n";
  return 2;
}

void PrintCatalogue() {
  std::cout << "| Rule | Scope | Severity | Description |\n";
  std::cout << "| --- | --- | --- | --- |\n";
  for (const papyrus::lint::RuleInfo& info :
       papyrus::lint::RuleCatalogue()) {
    std::cout << "| `" << info.id << "` | " << info.scope << " | "
              << papyrus::lint::SeverityToString(info.severity) << " | "
              << info.summary << " |\n";
  }
}

void PrintNames() {
  for (const papyrus::lint::RuleInfo& info :
       papyrus::lint::RuleCatalogue()) {
    std::cout << info.id << "\n";
  }
}

/// Expands file and directory arguments into sorted lists of .tdl and
/// .wire paths (directories contribute their matching files).
bool CollectPaths(const std::vector<std::string>& args,
                  std::vector<std::string>* tdl_paths,
                  std::vector<std::string>* wire_paths) {
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      std::vector<std::string> tdl_found;
      std::vector<std::string> wire_found;
      for (const auto& entry : fs::directory_iterator(arg, ec)) {
        if (entry.path().extension() == ".tdl") {
          tdl_found.push_back(entry.path().string());
        } else if (entry.path().extension() == ".wire") {
          wire_found.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::cerr << "papyrus-lint: cannot read directory " << arg << "\n";
        return false;
      }
      std::sort(tdl_found.begin(), tdl_found.end());
      std::sort(wire_found.begin(), wire_found.end());
      tdl_paths->insert(tdl_paths->end(), tdl_found.begin(),
                        tdl_found.end());
      wire_paths->insert(wire_paths->end(), wire_found.begin(),
                         wire_found.end());
    } else if (fs::path(arg).extension() == ".wire") {
      wire_paths->push_back(arg);
    } else {
      tdl_paths->push_back(arg);
    }
  }
  return true;
}

struct Totals {
  std::vector<papyrus::lint::Diagnostic> all;
  int errors = 0;
  int warnings = 0;
};

void Report(const Totals& totals, bool json, const std::string& counted,
            size_t count) {
  if (json) {
    std::cout << papyrus::lint::DiagnosticsToJson(totals.all) << "\n";
  } else {
    std::cout << count << " " << counted << ": " << totals.errors
              << " error(s), " << totals.warnings << " warning(s)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool wire = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--wire") {
      wire = true;
    } else if (arg == "--catalogue") {
      PrintCatalogue();
      return 0;
    } else if (arg == "--names") {
      PrintNames();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "papyrus-lint: unknown option " << arg << "\n";
      return Usage();
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (args.empty()) return Usage();

  std::vector<std::string> tdl_paths;
  std::vector<std::string> wire_paths;
  if (!CollectPaths(args, &tdl_paths, &wire_paths)) return 2;

  papyrus::tdl::TemplateLibrary library;
  if (wire) {
    // The daemon's sessions hold the thesis library; analyze against the
    // same baseline, extended by any .tdl arguments.
    (void)papyrus::tdl::RegisterThesisTemplates(&library);
  }
  // Register everything first so cross-template subtasks resolve; parse
  // failures surface as diagnostics during the lint pass below.
  for (const std::string& path : tdl_paths) {
    (void)library.AddFromFile(path);
  }
  auto tools = papyrus::cadtools::CreateStandardRegistry();

  Totals totals;
  if (wire) {
    if (wire_paths.empty()) {
      std::cerr << "papyrus-lint: no .wire files found\n";
      return 2;
    }
    papyrus::lint::WireAnalyzerOptions options;
    options.library = &library;
    options.tools = tools.get();
    for (const std::string& path : wire_paths) {
      papyrus::lint::WireAnalysis analysis =
          papyrus::lint::AnalyzeWireFile(path, options);
      totals.errors += analysis.errors;
      totals.warnings += analysis.warnings;
      for (papyrus::lint::Diagnostic& d : analysis.diagnostics) {
        if (!json) std::cout << d.ToString() << "\n";
        totals.all.push_back(std::move(d));
      }
    }
    Report(totals, json, "script(s)", wire_paths.size());
    return totals.errors > 0 ? 1 : 0;
  }

  if (!wire_paths.empty()) {
    std::cerr << "papyrus-lint: .wire files need --wire\n";
    return 2;
  }
  if (tdl_paths.empty()) {
    std::cerr << "papyrus-lint: no .tdl files found\n";
    return 2;
  }
  papyrus::lint::LintOptions options;
  options.tools = tools.get();
  options.library = &library;
  for (const std::string& path : tdl_paths) {
    papyrus::lint::LintResult result =
        papyrus::lint::LintFile(path, options);
    totals.errors += result.errors;
    totals.warnings += result.warnings;
    for (papyrus::lint::Diagnostic& d : result.diagnostics) {
      if (!json) std::cout << d.ToString() << "\n";
      totals.all.push_back(std::move(d));
    }
  }
  Report(totals, json, "template(s)", tdl_paths.size());
  return totals.errors > 0 ? 1 : 0;
}
