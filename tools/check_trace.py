#!/usr/bin/env python3
"""Validate a Papyrus Chrome trace_event JSON file.

Checks the structural invariants the TraceRecorder promises:

  * the file is the object format: {"displayTimeUnit", "traceEvents"}
  * every event has the required keys for its phase (ph in B E i C M)
  * per (pid, tid), every B has a matching E with the same name, properly
    nested (the E closes the most recent open B)
  * timestamps of non-metadata events are non-decreasing in file order
    (the recorder appends in virtual-time order)
  * exactly one `papyrus.session.end` instant exists and it is the last
    non-metadata event: a sealed recorder drops anything after it

With --metrics FILE, also validates the metrics snapshot JSON:

  * the three top-level sections exist (counters, gauges, histograms)
  * papyrus.flow.violations == 0 (a traced run must be flow-clean)
  * required catalogue keys are present

Exit status 0 = all checks pass, 1 = any violation (each is printed).
Stdlib only; no third-party dependencies.
"""

import argparse
import json
import sys

REQUIRED_EVENT_KEYS = {"ph", "name", "pid", "tid", "ts"}
VALID_PHASES = {"B", "E", "i", "C", "M"}
SESSION_END = "papyrus.session.end"

REQUIRED_COUNTERS = [
    "papyrus.steps.completed",
    "papyrus.steps.failed",
    "papyrus.cache.hits",
    "papyrus.cache.misses",
    "papyrus.sprite.spawns",
    "papyrus.oct.versions_created",
    "papyrus.flow.violations",
]
REQUIRED_HISTOGRAMS = ["papyrus.step.virtual_latency"]


class Checker:
    def __init__(self):
        self.errors = []

    def error(self, msg):
        self.errors.append(msg)
        print(f"error: {msg}", file=sys.stderr)

    def ok(self):
        return not self.errors


def check_trace(path, checker):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        checker.error(f"{path}: cannot parse trace JSON: {e}")
        return

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        checker.error(f"{path}: not object-format trace JSON "
                      "(missing traceEvents)")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        checker.error(f"{path}: traceEvents is not a list")
        return

    # E events carry no name in the recorder's output; everything else must.
    open_stacks = {}  # (pid, tid) -> [name, ...]
    last_ts = None
    session_end_index = None
    non_meta_count = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            checker.error(f"event #{i}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            checker.error(f"event #{i}: invalid phase {ph!r}")
            continue
        missing = REQUIRED_EVENT_KEYS - set(ev) - ({"name"} if ph == "E"
                                                   else set())
        if missing:
            checker.error(f"event #{i} (ph={ph}): missing keys "
                          f"{sorted(missing)}")
            continue
        if ph == "M":
            continue
        non_meta_count += 1
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            checker.error(f"event #{i}: ts is not numeric")
            continue
        if last_ts is not None and ts < last_ts:
            checker.error(f"event #{i}: timestamp {ts} goes backwards "
                          f"(previous {last_ts})")
        last_ts = ts

        key = (ev["pid"], ev["tid"])
        if ph == "B":
            open_stacks.setdefault(key, []).append(ev["name"])
        elif ph == "E":
            stack = open_stacks.get(key, [])
            if not stack:
                checker.error(f"event #{i}: E on pid={key[0]} tid={key[1]} "
                              "with no open B")
            else:
                stack.pop()
        elif ph == "i" and ev["name"] == SESSION_END:
            if session_end_index is not None:
                checker.error(f"event #{i}: duplicate {SESSION_END}")
            session_end_index = non_meta_count

    for (pid, tid), stack in sorted(open_stacks.items()):
        for name in stack:
            checker.error(f"unclosed span {name!r} on pid={pid} tid={tid}")

    if session_end_index is None:
        checker.error(f"no {SESSION_END} event (trace was not sealed)")
    elif session_end_index != non_meta_count:
        checker.error(
            f"{non_meta_count - session_end_index} event(s) recorded "
            f"after {SESSION_END}")


def check_metrics(path, checker):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        checker.error(f"{path}: cannot parse metrics JSON: {e}")
        return

    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            checker.error(f"{path}: missing section {section!r}")
            return

    counters = doc["counters"]
    for name in REQUIRED_COUNTERS:
        if name not in counters:
            checker.error(f"{path}: missing counter {name!r}")
    violations = counters.get("papyrus.flow.violations")
    if violations not in (None, 0):
        checker.error(f"{path}: papyrus.flow.violations = {violations} "
                      "(expected 0)")

    for name in REQUIRED_HISTOGRAMS:
        hist = doc["histograms"].get(name)
        if hist is None:
            checker.error(f"{path}: missing histogram {name!r}")
            continue
        buckets = hist.get("buckets", [])
        if not buckets or buckets[-1].get("le") != "+Inf":
            checker.error(f"{path}: histogram {name!r} lacks +Inf bucket")
        total = sum(b.get("count", 0) for b in buckets)
        if total != hist.get("count"):
            checker.error(f"{path}: histogram {name!r} bucket counts "
                          f"({total}) != count ({hist.get('count')})")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace_event JSON file to validate")
    parser.add_argument("--metrics", metavar="FILE",
                        help="also validate a metrics snapshot JSON")
    args = parser.parse_args()

    checker = Checker()
    check_trace(args.trace, checker)
    if args.metrics:
        check_metrics(args.metrics, checker)

    if checker.ok():
        print(f"ok: {args.trace} passed all trace invariants"
              + (f"; {args.metrics} passed metrics checks"
                 if args.metrics else ""))
        return 0
    print(f"{len(checker.errors)} violation(s)", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
