file(REMOVE_RECURSE
  "CMakeFiles/team_design.dir/team_design.cpp.o"
  "CMakeFiles/team_design.dir/team_design.cpp.o.d"
  "team_design"
  "team_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/team_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
