# Empty compiler generated dependencies file for team_design.
# This may be replaced when dependencies are built.
