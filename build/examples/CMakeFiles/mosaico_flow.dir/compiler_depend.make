# Empty compiler generated dependencies file for mosaico_flow.
# This may be replaced when dependencies are built.
