file(REMOVE_RECURSE
  "CMakeFiles/mosaico_flow.dir/mosaico_flow.cpp.o"
  "CMakeFiles/mosaico_flow.dir/mosaico_flow.cpp.o.d"
  "mosaico_flow"
  "mosaico_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mosaico_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
