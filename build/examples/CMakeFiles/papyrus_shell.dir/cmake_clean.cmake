file(REMOVE_RECURSE
  "CMakeFiles/papyrus_shell.dir/papyrus_shell.cpp.o"
  "CMakeFiles/papyrus_shell.dir/papyrus_shell.cpp.o.d"
  "papyrus_shell"
  "papyrus_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papyrus_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
