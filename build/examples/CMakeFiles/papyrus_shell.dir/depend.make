# Empty dependencies file for papyrus_shell.
# This may be replaced when dependencies are built.
