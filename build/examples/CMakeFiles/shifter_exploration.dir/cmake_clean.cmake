file(REMOVE_RECURSE
  "CMakeFiles/shifter_exploration.dir/shifter_exploration.cpp.o"
  "CMakeFiles/shifter_exploration.dir/shifter_exploration.cpp.o.d"
  "shifter_exploration"
  "shifter_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shifter_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
