# Empty dependencies file for shifter_exploration.
# This may be replaced when dependencies are built.
