
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/activity/activity_manager.cc" "src/CMakeFiles/papyrus.dir/activity/activity_manager.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/activity/activity_manager.cc.o.d"
  "/root/repo/src/activity/design_thread.cc" "src/CMakeFiles/papyrus.dir/activity/design_thread.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/activity/design_thread.cc.o.d"
  "/root/repo/src/activity/display.cc" "src/CMakeFiles/papyrus.dir/activity/display.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/activity/display.cc.o.d"
  "/root/repo/src/activity/persistence.cc" "src/CMakeFiles/papyrus.dir/activity/persistence.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/activity/persistence.cc.o.d"
  "/root/repo/src/activity/thread_ops.cc" "src/CMakeFiles/papyrus.dir/activity/thread_ops.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/activity/thread_ops.cc.o.d"
  "/root/repo/src/base/clock.cc" "src/CMakeFiles/papyrus.dir/base/clock.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/base/clock.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/papyrus.dir/base/status.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/base/status.cc.o.d"
  "/root/repo/src/base/strings.cc" "src/CMakeFiles/papyrus.dir/base/strings.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/base/strings.cc.o.d"
  "/root/repo/src/cadtools/measurements.cc" "src/CMakeFiles/papyrus.dir/cadtools/measurements.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/cadtools/measurements.cc.o.d"
  "/root/repo/src/cadtools/standard_tools.cc" "src/CMakeFiles/papyrus.dir/cadtools/standard_tools.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/cadtools/standard_tools.cc.o.d"
  "/root/repo/src/cadtools/tool.cc" "src/CMakeFiles/papyrus.dir/cadtools/tool.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/cadtools/tool.cc.o.d"
  "/root/repo/src/core/papyrus.cc" "src/CMakeFiles/papyrus.dir/core/papyrus.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/core/papyrus.cc.o.d"
  "/root/repo/src/meta/adg.cc" "src/CMakeFiles/papyrus.dir/meta/adg.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/meta/adg.cc.o.d"
  "/root/repo/src/meta/inference.cc" "src/CMakeFiles/papyrus.dir/meta/inference.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/meta/inference.cc.o.d"
  "/root/repo/src/meta/retrace.cc" "src/CMakeFiles/papyrus.dir/meta/retrace.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/meta/retrace.cc.o.d"
  "/root/repo/src/meta/tsd.cc" "src/CMakeFiles/papyrus.dir/meta/tsd.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/meta/tsd.cc.o.d"
  "/root/repo/src/oct/attribute_store.cc" "src/CMakeFiles/papyrus.dir/oct/attribute_store.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/oct/attribute_store.cc.o.d"
  "/root/repo/src/oct/database.cc" "src/CMakeFiles/papyrus.dir/oct/database.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/oct/database.cc.o.d"
  "/root/repo/src/oct/design_data.cc" "src/CMakeFiles/papyrus.dir/oct/design_data.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/oct/design_data.cc.o.d"
  "/root/repo/src/oct/object_id.cc" "src/CMakeFiles/papyrus.dir/oct/object_id.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/oct/object_id.cc.o.d"
  "/root/repo/src/sprite/network.cc" "src/CMakeFiles/papyrus.dir/sprite/network.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/sprite/network.cc.o.d"
  "/root/repo/src/storage/reclamation.cc" "src/CMakeFiles/papyrus.dir/storage/reclamation.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/storage/reclamation.cc.o.d"
  "/root/repo/src/sync/sds.cc" "src/CMakeFiles/papyrus.dir/sync/sds.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/sync/sds.cc.o.d"
  "/root/repo/src/task/progress_view.cc" "src/CMakeFiles/papyrus.dir/task/progress_view.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/task/progress_view.cc.o.d"
  "/root/repo/src/task/task_manager.cc" "src/CMakeFiles/papyrus.dir/task/task_manager.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/task/task_manager.cc.o.d"
  "/root/repo/src/tcl/builtins.cc" "src/CMakeFiles/papyrus.dir/tcl/builtins.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/tcl/builtins.cc.o.d"
  "/root/repo/src/tcl/expr.cc" "src/CMakeFiles/papyrus.dir/tcl/expr.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/tcl/expr.cc.o.d"
  "/root/repo/src/tcl/interp.cc" "src/CMakeFiles/papyrus.dir/tcl/interp.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/tcl/interp.cc.o.d"
  "/root/repo/src/tcl/parser.cc" "src/CMakeFiles/papyrus.dir/tcl/parser.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/tcl/parser.cc.o.d"
  "/root/repo/src/tdl/template.cc" "src/CMakeFiles/papyrus.dir/tdl/template.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/tdl/template.cc.o.d"
  "/root/repo/src/tdl/template_layout.cc" "src/CMakeFiles/papyrus.dir/tdl/template_layout.cc.o" "gcc" "src/CMakeFiles/papyrus.dir/tdl/template_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
