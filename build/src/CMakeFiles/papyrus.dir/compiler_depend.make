# Empty compiler generated dependencies file for papyrus.
# This may be replaced when dependencies are built.
