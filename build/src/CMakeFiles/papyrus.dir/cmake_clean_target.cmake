file(REMOVE_RECURSE
  "libpapyrus.a"
)
