# Empty compiler generated dependencies file for bench_metadata.
# This may be replaced when dependencies are built.
