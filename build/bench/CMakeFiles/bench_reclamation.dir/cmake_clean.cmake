file(REMOVE_RECURSE
  "CMakeFiles/bench_reclamation.dir/bench_reclamation.cc.o"
  "CMakeFiles/bench_reclamation.dir/bench_reclamation.cc.o.d"
  "bench_reclamation"
  "bench_reclamation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reclamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
