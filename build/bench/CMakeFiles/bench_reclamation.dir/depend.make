# Empty dependencies file for bench_reclamation.
# This may be replaced when dependencies are built.
