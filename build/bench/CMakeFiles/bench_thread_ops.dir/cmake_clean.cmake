file(REMOVE_RECURSE
  "CMakeFiles/bench_thread_ops.dir/bench_thread_ops.cc.o"
  "CMakeFiles/bench_thread_ops.dir/bench_thread_ops.cc.o.d"
  "bench_thread_ops"
  "bench_thread_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thread_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
