# Empty compiler generated dependencies file for bench_thread_ops.
# This may be replaced when dependencies are built.
