file(REMOVE_RECURSE
  "CMakeFiles/bench_fig34_resumed_state.dir/bench_fig34_resumed_state.cc.o"
  "CMakeFiles/bench_fig34_resumed_state.dir/bench_fig34_resumed_state.cc.o.d"
  "bench_fig34_resumed_state"
  "bench_fig34_resumed_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig34_resumed_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
