# Empty compiler generated dependencies file for bench_fig34_resumed_state.
# This may be replaced when dependencies are built.
