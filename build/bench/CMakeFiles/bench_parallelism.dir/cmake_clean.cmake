file(REMOVE_RECURSE
  "CMakeFiles/bench_parallelism.dir/bench_parallelism.cc.o"
  "CMakeFiles/bench_parallelism.dir/bench_parallelism.cc.o.d"
  "bench_parallelism"
  "bench_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
