# Empty compiler generated dependencies file for bench_fig33_traces.
# This may be replaced when dependencies are built.
