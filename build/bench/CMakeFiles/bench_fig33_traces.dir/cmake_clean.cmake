file(REMOVE_RECURSE
  "CMakeFiles/bench_fig33_traces.dir/bench_fig33_traces.cc.o"
  "CMakeFiles/bench_fig33_traces.dir/bench_fig33_traces.cc.o.d"
  "bench_fig33_traces"
  "bench_fig33_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig33_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
