file(REMOVE_RECURSE
  "CMakeFiles/bench_fig43_mosaico.dir/bench_fig43_mosaico.cc.o"
  "CMakeFiles/bench_fig43_mosaico.dir/bench_fig43_mosaico.cc.o.d"
  "bench_fig43_mosaico"
  "bench_fig43_mosaico.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig43_mosaico.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
