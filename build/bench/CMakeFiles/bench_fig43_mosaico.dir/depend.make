# Empty dependencies file for bench_fig43_mosaico.
# This may be replaced when dependencies are built.
