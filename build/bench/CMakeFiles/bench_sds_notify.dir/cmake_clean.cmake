file(REMOVE_RECURSE
  "CMakeFiles/bench_sds_notify.dir/bench_sds_notify.cc.o"
  "CMakeFiles/bench_sds_notify.dir/bench_sds_notify.cc.o.d"
  "bench_sds_notify"
  "bench_sds_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sds_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
