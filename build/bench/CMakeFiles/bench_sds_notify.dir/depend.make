# Empty dependencies file for bench_sds_notify.
# This may be replaced when dependencies are built.
