file(REMOVE_RECURSE
  "CMakeFiles/bench_panzoom.dir/bench_panzoom.cc.o"
  "CMakeFiles/bench_panzoom.dir/bench_panzoom.cc.o.d"
  "bench_panzoom"
  "bench_panzoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_panzoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
