# Empty compiler generated dependencies file for bench_panzoom.
# This may be replaced when dependencies are built.
