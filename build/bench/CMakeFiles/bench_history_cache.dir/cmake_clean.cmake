file(REMOVE_RECURSE
  "CMakeFiles/bench_history_cache.dir/bench_history_cache.cc.o"
  "CMakeFiles/bench_history_cache.dir/bench_history_cache.cc.o.d"
  "bench_history_cache"
  "bench_history_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_history_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
