# Empty dependencies file for bench_history_cache.
# This may be replaced when dependencies are built.
