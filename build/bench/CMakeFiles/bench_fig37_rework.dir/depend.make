# Empty dependencies file for bench_fig37_rework.
# This may be replaced when dependencies are built.
