file(REMOVE_RECURSE
  "CMakeFiles/bench_fig37_rework.dir/bench_fig37_rework.cc.o"
  "CMakeFiles/bench_fig37_rework.dir/bench_fig37_rework.cc.o.d"
  "bench_fig37_rework"
  "bench_fig37_rework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig37_rework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
