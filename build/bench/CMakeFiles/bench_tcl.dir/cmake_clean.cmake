file(REMOVE_RECURSE
  "CMakeFiles/bench_tcl.dir/bench_tcl.cc.o"
  "CMakeFiles/bench_tcl.dir/bench_tcl.cc.o.d"
  "bench_tcl"
  "bench_tcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
