# Empty dependencies file for bench_tcl.
# This may be replaced when dependencies are built.
