file(REMOVE_RECURSE
  "CMakeFiles/sync_test.dir/sync_test.cc.o"
  "CMakeFiles/sync_test.dir/sync_test.cc.o.d"
  "sync_test"
  "sync_test.pdb"
  "sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
