# Empty compiler generated dependencies file for oct_test.
# This may be replaced when dependencies are built.
