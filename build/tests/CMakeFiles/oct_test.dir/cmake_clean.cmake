file(REMOVE_RECURSE
  "CMakeFiles/oct_test.dir/oct_test.cc.o"
  "CMakeFiles/oct_test.dir/oct_test.cc.o.d"
  "oct_test"
  "oct_test.pdb"
  "oct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
