file(REMOVE_RECURSE
  "CMakeFiles/cadtools_test.dir/cadtools_test.cc.o"
  "CMakeFiles/cadtools_test.dir/cadtools_test.cc.o.d"
  "cadtools_test"
  "cadtools_test.pdb"
  "cadtools_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cadtools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
