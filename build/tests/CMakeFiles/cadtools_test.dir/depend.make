# Empty dependencies file for cadtools_test.
# This may be replaced when dependencies are built.
