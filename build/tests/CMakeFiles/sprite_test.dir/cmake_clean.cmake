file(REMOVE_RECURSE
  "CMakeFiles/sprite_test.dir/sprite_test.cc.o"
  "CMakeFiles/sprite_test.dir/sprite_test.cc.o.d"
  "sprite_test"
  "sprite_test.pdb"
  "sprite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
