# Empty dependencies file for sprite_test.
# This may be replaced when dependencies are built.
