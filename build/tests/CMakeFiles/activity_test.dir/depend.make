# Empty dependencies file for activity_test.
# This may be replaced when dependencies are built.
