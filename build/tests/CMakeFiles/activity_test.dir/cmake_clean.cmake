file(REMOVE_RECURSE
  "CMakeFiles/activity_test.dir/activity_test.cc.o"
  "CMakeFiles/activity_test.dir/activity_test.cc.o.d"
  "activity_test"
  "activity_test.pdb"
  "activity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
