file(REMOVE_RECURSE
  "CMakeFiles/template_layout_test.dir/template_layout_test.cc.o"
  "CMakeFiles/template_layout_test.dir/template_layout_test.cc.o.d"
  "template_layout_test"
  "template_layout_test.pdb"
  "template_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
