# Empty dependencies file for template_layout_test.
# This may be replaced when dependencies are built.
