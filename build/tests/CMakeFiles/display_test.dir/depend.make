# Empty dependencies file for display_test.
# This may be replaced when dependencies are built.
