file(REMOVE_RECURSE
  "CMakeFiles/display_test.dir/display_test.cc.o"
  "CMakeFiles/display_test.dir/display_test.cc.o.d"
  "display_test"
  "display_test.pdb"
  "display_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/display_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
