# Empty dependencies file for tdl_test.
# This may be replaced when dependencies are built.
