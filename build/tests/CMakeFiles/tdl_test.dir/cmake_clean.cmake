file(REMOVE_RECURSE
  "CMakeFiles/tdl_test.dir/tdl_test.cc.o"
  "CMakeFiles/tdl_test.dir/tdl_test.cc.o.d"
  "tdl_test"
  "tdl_test.pdb"
  "tdl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
