file(REMOVE_RECURSE
  "CMakeFiles/tcl_test.dir/tcl_test.cc.o"
  "CMakeFiles/tcl_test.dir/tcl_test.cc.o.d"
  "tcl_test"
  "tcl_test.pdb"
  "tcl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
