# Empty compiler generated dependencies file for tcl_test.
# This may be replaced when dependencies are built.
