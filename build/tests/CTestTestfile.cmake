# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/oct_test[1]_include.cmake")
include("/root/repo/build/tests/tcl_test[1]_include.cmake")
include("/root/repo/build/tests/sprite_test[1]_include.cmake")
include("/root/repo/build/tests/cadtools_test[1]_include.cmake")
include("/root/repo/build/tests/tdl_test[1]_include.cmake")
include("/root/repo/build/tests/task_test[1]_include.cmake")
include("/root/repo/build/tests/activity_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/meta_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/template_layout_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/extensions2_test[1]_include.cmake")
include("/root/repo/build/tests/display_test[1]_include.cmake")
